"""Pipeline-serving experiments: multi-stage DAGs beyond the paper.

* :func:`rag_pipeline_study` — two claims on one payload:

  1. **Joint beats proportional sizing.**  ``plan_pipeline_capacity`` sizes
     every stage pool of a retrieval→generation chain against one end-to-end
     SLO; the proportional baseline (the same replica count on every stage,
     grown until the measured end-to-end percentile meets the same SLO)
     attains the SLO too, but on strictly more replicas — uniform growth
     over-provisions the stages that never bind.
  2. **Cascades cut latency at matched quality proxy.**  A draft→verify
     cascade (small draft model, seeded acceptance rate, large verifier for
     the rest) against monolithic large-model serving on the *same total
     hardware*: the cascade's mean latency is lower because most requests
     stop at the draft stage.  The accuracy proxy is matched by
     construction — escalated requests get the large model's output and
     accepted drafts are, by the acceptance-rate definition, the ones the
     verifier would agree with — so the comparison isolates latency.
"""

from __future__ import annotations

from repro.plan import plan_pipeline_capacity
from repro.serve import (
    PipelineSpec,
    PoissonTraffic,
    ServeReport,
    WorkloadMix,
    serve,
    serve_pipeline,
)

#: Stage chain and operating point for the joint-vs-proportional claim: the
#: encoder stage saturates one vitality replica at this rate, deit-tiny never
#: binds, so uniform per-stage growth over-provisions the light stage.
JOINT_PIPELINE = "rag = encoder[tokens=128] -> deit-tiny"
JOINT_RATE = 120.0
JOINT_SLO_MS = 20.0

#: Cascade arm: a cheap draft encoder accepts 70% of requests, the rest
#: escalate to the 512-token verifier; the monolithic arm serves every
#: request on the verifier's model with the same two replicas.
DRAFT_MODEL = "encoder[tokens=32]"
VERIFY_MODEL = "encoder[tokens=512]"
ACCEPTANCE_RATE = 0.7
CASCADE_RATE = 40.0


def _arrivals(rate: float) -> PoissonTraffic:
    return PoissonTraffic(rate=rate, mix=WorkloadMix.of(["deit-tiny"]))


def _e2e_row(report: ServeReport, slo_ms: float) -> dict[str, object]:
    p95 = report.latency.quantile(0.95)
    return {
        "completed": report.completed,
        "mean_ms": report.latency.mean * 1e3,
        "p95_ms": p95 * 1e3,
        "slo_attained": p95 * 1e3 <= slo_ms,
        "throughput_rps": report.throughput_rps,
        "energy_per_request_mj": report.energy_per_request_joules * 1e3,
    }


def _joint_vs_proportional(duration: float) -> dict[str, object]:
    planned = plan_pipeline_capacity(
        JOINT_RATE, JOINT_PIPELINE, slo_seconds=JOINT_SLO_MS * 1e-3,
        slo_percentile=0.95, duration=duration, targets="vitality",
        max_replicas_per_stage=3, policy="fifo", seed=0)
    chosen = planned["chosen"]

    stage_names = [stage["name"]
                   for stage in planned["config"]["pipeline"]["stages"]]
    proportional = None
    for count in range(1, 4):
        pools = {name: f"{count}xvitality" for name in stage_names}
        report = serve_pipeline(_arrivals(JOINT_RATE), JOINT_PIPELINE, pools,
                                policy="fifo", duration=duration, seed=0,
                                slo_seconds=JOINT_SLO_MS * 1e-3)
        row = _e2e_row(report, JOINT_SLO_MS)
        row.update(pools={name: pools[name] for name in stage_names},
                   replicas=count * len(stage_names))
        proportional = row
        if row["slo_attained"]:
            break

    return {
        "pipeline": JOINT_PIPELINE,
        "rate_rps": JOINT_RATE,
        "slo_ms": JOINT_SLO_MS,
        "joint": {key: chosen[key] for key in
                  ("pools", "replicas", "area_mm2", "p95_ms", "slo_attained")}
        if chosen is not None else None,
        "proportional": proportional,
        "replicas_saved": (proportional["replicas"] - chosen["replicas"]
                           if chosen is not None and proportional is not None
                           else None),
    }


def _cascade_vs_monolithic(duration: float) -> dict[str, object]:
    cascade_spec = PipelineSpec.cascade("cascade", DRAFT_MODEL, VERIFY_MODEL,
                                        acceptance_rate=ACCEPTANCE_RATE)
    cascade = serve_pipeline(
        _arrivals(CASCADE_RATE), cascade_spec,
        {"draft": "1xvitality", "verify": "1xvitality"},
        policy="fifo", duration=duration, seed=0)
    monolithic = serve(
        PoissonTraffic(rate=CASCADE_RATE, mix=WorkloadMix.of([VERIFY_MODEL])),
        "2xvitality", policy="fifo", duration=duration, seed=0)

    cascade_row = _e2e_row(cascade, slo_ms=float("inf"))
    cascade_row.update(
        replicas=2, escalation_rate=(
            cascade.pipeline["stages"][1]["requests"] / cascade.completed))
    monolithic_row = _e2e_row(monolithic, slo_ms=float("inf"))
    monolithic_row.update(replicas=2)
    for row in (cascade_row, monolithic_row):
        del row["slo_attained"]
        # Quality proxy: escalated requests carry the verifier's output and
        # accepted drafts are (by the acceptance-rate definition) those the
        # verifier would agree with, so both arms deliver large-model-grade
        # answers on every request.
        row["accuracy_proxy"] = 1.0

    return {
        "draft_model": DRAFT_MODEL,
        "verify_model": VERIFY_MODEL,
        "acceptance_rate": ACCEPTANCE_RATE,
        "rate_rps": CASCADE_RATE,
        "cascade": cascade_row,
        "monolithic": monolithic_row,
        "mean_latency_speedup": (monolithic_row["mean_ms"]
                                 / cascade_row["mean_ms"]),
    }


def rag_pipeline_study(quick: bool = True) -> dict[str, object]:
    """Joint pool sizing vs proportional, and cascade vs monolithic.

    Returns ``{"joint_vs_proportional": ..., "cascade_vs_monolithic": ...}``;
    the joint plan meets the end-to-end SLO on fewer replicas than the
    proportional baseline, and the cascade's mean latency beats monolithic
    serving on the same two replicas.
    """

    duration = 1.0 if quick else 4.0
    return {
        "joint_vs_proportional": _joint_vs_proportional(duration),
        "cascade_vs_monolithic": _cascade_vs_monolithic(2.0 if quick else 8.0),
    }
