"""Design-space exploration: sweep microarchitecture knobs, report the Pareto set.

The paper evaluates ViTALiTy at one fixed design point (Table III: 64x64
SA-Mult at 500 MHz with 200 KB of buffers).  With the parametric core
(:mod:`repro.hardware.core`) any design point is simulatable on demand, so
this driver does what HPC performance-modelling studies do across processor
generations: expand a PE-array x frequency x buffer space into configured
targets, simulate every point (optionally in parallel), and reduce the cloud
to its Pareto frontier over end-to-end latency, energy and silicon area.

The flat per-point schema (``latency_ms`` / ``energy_mj`` / ``area_mm2`` plus
the knob string) is what ``repro dse --json`` emits and what the CI smoke
job asserts on.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.engine import ResultCache, Sweep, get_target, target_area_mm2
from repro.plan.optimizer import pareto_frontier

__all__ = ["explore_design_space", "roofline_experiment", "pareto_frontier"]

#: Default exploration space: a 3 x 3 x 3 cube around the Table III point.
DEFAULT_PE = ("32x32", "64x64", "128x128")
DEFAULT_FREQ = ("250mhz", "500mhz", "1ghz")
DEFAULT_SRAM_KB = (100, 200, 400)

#: Default bandwidth axis for the roofline study: starved / LPDDR-class / ample.
DEFAULT_DRAM_GBPS = (8.0, 25.0, 100.0)


def explore_design_space(model: str = "deit-tiny",
                         target: str = "vitality",
                         pe: Sequence[str] = DEFAULT_PE,
                         freq: Sequence[str] = DEFAULT_FREQ,
                         sram_kb: Sequence[int] = DEFAULT_SRAM_KB,
                         dram_gbps: Sequence[float] | None = None,
                         jobs: int | None = None,
                         cache: ResultCache | None = None) -> dict[str, object]:
    """Sweep the PE/frequency/buffer cube and return points + Pareto frontier.

    ``target`` names the family to explore (any configurable target —
    ``vitality`` by default, ``sanger`` works too).  ``dram_gbps`` optionally
    adds a DRAM-bandwidth axis: each value activates the tile-level memory
    simulator, so points pay for off-chip traffic in cycles and carry
    per-layer roofline classifications (omitting it keeps the historical
    ideal-bandwidth sweep).  ``jobs`` fans the simulations out over worker
    processes; ``cache`` lets repeated explorations (and
    ``repro --cache-dir``) skip simulated points.
    """

    knob_strings = [
        f"pe={pe_value},freq={freq_value},sram_kb={sram_value}"
        for pe_value, freq_value, sram_value
        in itertools.product(pe, freq, sram_kb)
    ]
    if dram_gbps is not None:
        knob_strings = [
            f"{base},dram_gbps={bandwidth:g}"
            for base, bandwidth in itertools.product(knob_strings, dram_gbps)
        ]
    outcome = (Sweep()
               .models(model)
               .targets(target)
               .over_configs(knob_strings)
               .run(cache=cache, jobs=jobs))

    points = []
    for spec, result in zip(outcome.specs, outcome.results):
        resolved = get_target(spec.target)
        point = {
            "target": resolved.name,
            "config": result.config,
            "latency_ms": result.end_to_end_latency * 1e3,
            "energy_mj": result.end_to_end_energy * 1e3,
            "area_mm2": target_area_mm2(spec.target),
            "peak_gmacs": resolved.peak_macs_per_second / 1e9,
        }
        if result.roofline:
            point["dram_gbps"] = result.roofline[0].peak_gbps
            point["memory_bound_layers"] = sum(
                record.repeats for record in result.roofline
                if record.bound == "memory")
        points.append(point)

    # Platforms have no silicon-area model; drop the axis rather than fake it.
    axes = ["latency_ms", "energy_mj"]
    if all(point["area_mm2"] is not None for point in points):
        axes.append("area_mm2")
    frontier = pareto_frontier(points, axes)
    frontier_keys = {point["target"] for point in frontier}
    for point in points:
        point["pareto"] = point["target"] in frontier_keys

    space: dict[str, object] = {
        "pe": list(pe), "freq": list(freq), "sram_kb": list(sram_kb)}
    if dram_gbps is not None:
        space["dram_gbps"] = list(dram_gbps)
    return {
        "model": model,
        "target": target,
        "space": space,
        "objectives": axes,
        "evaluated": len(points),
        "points": points,
        "pareto_frontier": frontier,
        "cache": {"hits": outcome.hits, "misses": outcome.misses,
                  "disk_hits": outcome.disk_hits},
    }


def roofline_experiment(model: str = "deit-tiny",
                        target: str = "vitality",
                        pe: Sequence[str] = DEFAULT_PE,
                        dram_gbps: Sequence[float] = DEFAULT_DRAM_GBPS,
                        jobs: int | None = None,
                        cache: ResultCache | None = None) -> dict[str, object]:
    """Bandwidth-aware roofline study: the PE x DRAM-bandwidth trade-off.

    Under the ideal-bandwidth analytic model a bigger PE array is strictly
    faster, so the classic DSE frontier always keeps the 128x128 corner.
    With the tile-level memory simulator active, a big array behind a starved
    DRAM interface spends its cycles stalled on operand loads — and the
    frontier *demotes* it below a balanced smaller array paired with more
    bandwidth.  This driver runs that sweep (frequency and buffers pinned to
    the Table III point so bandwidth is the only memory axis) and reports the
    demotions explicitly: every non-frontier point that is dominated by a
    frontier point with a strictly smaller array.
    """

    outcome = explore_design_space(
        model=model, target=target, pe=pe, freq=("500mhz",),
        sram_kb=(200,), dram_gbps=dram_gbps, jobs=jobs, cache=cache)

    frontier = outcome["pareto_frontier"]
    demotions = []
    for point in outcome["points"]:
        if point["pareto"]:
            continue
        dominators = [
            candidate for candidate in frontier
            if candidate["area_mm2"] < point["area_mm2"]
            and candidate["latency_ms"] <= point["latency_ms"]
            and candidate["energy_mj"] <= point["energy_mj"]
        ]
        if dominators:
            best = min(dominators, key=lambda candidate: candidate["latency_ms"])
            demotions.append({
                "demoted": point["target"],
                "demoted_by": best["target"],
                "latency_ratio": point["latency_ms"] / best["latency_ms"],
                "memory_bound_layers": point.get("memory_bound_layers", 0),
            })

    outcome["demotions"] = demotions
    return outcome
