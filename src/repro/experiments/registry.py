"""Registry mapping experiment identifiers to their driver callables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    accuracy_exps,
    complexity,
    dse_exps,
    hardware_exps,
    llm_exps,
    pipeline_exps,
    plan_exps,
    profiling_exps,
    seqscale_exps,
    serving_exps,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment: its id, what it reproduces, and its driver."""

    identifier: str
    title: str
    paper_reference: str
    runner: Callable[..., object]

    def run(self, **kwargs):
        return self.runner(**kwargs)


_EXPERIMENTS: dict[str, ExperimentSpec] = {}


def _register(identifier: str, title: str, paper_reference: str,
              runner: Callable[..., object]) -> None:
    _EXPERIMENTS[identifier] = ExperimentSpec(identifier, title, paper_reference, runner)


_register("fig1", "MHA runtime breakdown across platforms", "Figure 1",
          profiling_exps.fig1_runtime_breakdown)
_register("fig3", "Attention distribution under mean-centering", "Figure 3",
          accuracy_exps.fig3_attention_distribution)
_register("tab1", "Operation counts: ViTALiTy vs vanilla attention", "Table I",
          complexity.table1_op_counts)
_register("tab2", "Per-step latency profile on the edge GPU", "Table II",
          profiling_exps.table2_latency_profile)
_register("tab3", "Accelerator configurations (area/power)", "Table III",
          hardware_exps.table3_configurations)
_register("tab4_flops", "Attention FLOPs per method", "Table IV (FLOPs column)",
          complexity.table4_flops)
_register("tab4_accuracy", "Accuracy per method", "Table IV (accuracy column)",
          accuracy_exps.table4_accuracy)
_register("fig10", "Accuracy of method variants across models", "Figure 10",
          accuracy_exps.fig10_accuracy)
_register("fig11", "End-to-end latency speedup", "Figure 11",
          hardware_exps.fig11_latency_speedup)
_register("fig12", "End-to-end energy efficiency", "Figure 12",
          hardware_exps.fig12_energy_efficiency)
_register("fig13", "Training-scheme ablation on DeiT-Tiny", "Figure 13",
          accuracy_exps.fig13_training_ablation)
_register("fig14", "Sparse component vanishing over training", "Figure 14",
          accuracy_exps.fig14_sparsity_vanishing)
_register("fig15", "Sparsity-threshold sweep", "Figure 15",
          accuracy_exps.fig15_threshold_sweep)
_register("tab5", "Dataflow ablation: G-stationary vs down-forward", "Table V",
          hardware_exps.table5_dataflow_energy)
_register("tab6", "Accelerator extension to other linear attentions", "Table VI",
          hardware_exps.table6_extension)
_register("salo", "Attention speedup over the SALO accelerator", "Section V-C",
          hardware_exps.salo_comparison)
_register("pipeline_ablation", "Intra-layer pipeline on/off ablation", "Section IV-C",
          hardware_exps.pipeline_ablation)
_register("eq1_3", "Closed-form operation-count ratios", "Equations (1)-(3)",
          complexity.closed_form_ratios)
_register("serve_comparison", "Serving under load: taylor vs vanilla fleets",
          "beyond the paper", serving_exps.serving_comparison)
_register("serve_fleet", "Heterogeneous-fleet routing under bursty traffic",
          "beyond the paper", serving_exps.serving_fleet_study)
_register("dse", "Design-space exploration: PE array x frequency x SRAM Pareto",
          "beyond the paper", dse_exps.explore_design_space)
_register("roofline", "Bandwidth-aware roofline DSE: PE array x DRAM bandwidth",
          "beyond the paper", dse_exps.roofline_experiment)
_register("seqscale", "Sequence-length scaling: vanilla/taylor crossover",
          "beyond the paper", seqscale_exps.seqscale_experiment)
_register("capacity", "SLO-driven capacity planning: cheapest fleet meeting p99",
          "beyond the paper", plan_exps.capacity_planning)
_register("autoscale", "Autoscaling vs a peak-sized static fleet (diurnal load)",
          "beyond the paper", plan_exps.autoscale_study)
_register("disagg", "Continuous batching and prefill/decode disaggregation",
          "beyond the paper", llm_exps.continuous_vs_disaggregated)
_register("rag", "RAG pipeline serving: joint pool sizing and cascade "
                 "draft-verify", "beyond the paper",
          pipeline_exps.rag_pipeline_study)


def list_experiments() -> list[str]:
    """Identifiers of every registered experiment."""

    return sorted(_EXPERIMENTS)


def get_experiment(identifier: str) -> ExperimentSpec:
    """Look up an experiment by identifier (e.g. ``"fig11"``)."""

    try:
        return _EXPERIMENTS[identifier]
    except KeyError:
        raise KeyError(
            f"unknown experiment {identifier!r}; available: {list_experiments()}"
        ) from None


def run_experiment(identifier: str, **kwargs):
    """Run one experiment by identifier and return its result structure."""

    return get_experiment(identifier).run(**kwargs)
