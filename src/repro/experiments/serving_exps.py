"""Serving-layer experiments: fleet-level behavior the per-image tables miss.

The paper evaluates one image at a time; these experiments put the same
hardware models behind the :mod:`repro.serve` discrete-event simulator and
measure what a deployment actually sees — sustained throughput, tail latency,
SLO attainment and energy per request under load.

* :func:`serving_comparison` — Taylor-attention fleets vs vanilla-attention
  fleets under identical traffic, for the accelerator pair (ViTALiTy vs
  Sanger) and a general-purpose platform pair (CPU taylor vs vanilla).  Each
  pair's arrival rate is chosen to saturate the vanilla fleet, so the
  throughput gap is the sustained-capacity gap, not an artifact of light load.
* :func:`serving_fleet_study` — one heterogeneous fleet (accelerators plus a
  GPU) under bursty traffic, routed least-loaded vs energy-aware: the
  energy-aware router holds requests on the efficient accelerators and spills
  to the hungry GPU only when they fall behind.
"""

from __future__ import annotations

from repro.serve import (
    BurstyTraffic,
    Fleet,
    PoissonTraffic,
    ServeReport,
    WorkloadMix,
    compare,
    serve,
)

#: The vanilla-vs-taylor fleet pairs and the rate (req/s) that saturates each
#: pair's vanilla fleet.  Within a pair both fleets see identical traffic.
COMPARISON_PAIRS = (
    ("accelerator", "2xvitality", "2xsanger", 600.0),
    ("cpu_platform", "2xcpu:taylor", "2xcpu:vanilla", 55.0),
)


def _report_row(report: ServeReport) -> dict[str, float]:
    return {
        "offered_rps": report.config["traffic"]["rate"],
        "throughput_rps": report.throughput_rps,
        "p50_ms": report.latency.p50 * 1e3,
        "p99_ms": report.latency.p99 * 1e3,
        "slo_violation_rate": report.slo_violation_rate,
        "energy_per_request_mj": report.energy_per_request_joules * 1e3,
    }


def serving_comparison(quick: bool = True,
                       model: str = "deit-tiny") -> dict[str, dict[str, float]]:
    """Taylor vs vanilla fleets under identical saturating traffic.

    Returns ``{fleet_label: {offered_rps, throughput_rps, p50_ms, p99_ms,
    slo_violation_rate, energy_per_request_mj}}``.  The Taylor fleet of each
    pair sustains the offered load; the vanilla fleet saturates below it.
    """

    duration = 2.0 if quick else 10.0
    rows: dict[str, dict[str, float]] = {}
    for pair, taylor_fleet, vanilla_fleet, rate in COMPARISON_PAIRS:
        traffic = PoissonTraffic(rate=rate, mix=WorkloadMix.of([model]))
        reports = compare(
            traffic,
            {f"{pair}: taylor ({taylor_fleet})": taylor_fleet,
             f"{pair}: vanilla ({vanilla_fleet})": vanilla_fleet},
            policy="timeout", duration=duration, seed=0, models=[model])
        for label, report in reports.items():
            rows[label] = _report_row(report)
    return rows


def serving_fleet_study(quick: bool = True, model: str = "deit-tiny",
                        fleet: str = "2xvitality,1xgpu",
                        rate: float = 400.0) -> dict[str, dict[str, float]]:
    """Least-loaded vs energy-aware routing on one heterogeneous fleet.

    Bursty (MMPP) traffic stresses the routers: least-loaded spreads bursts
    across every replica including the energy-hungry GPU, while energy-aware
    routing concedes some tail latency to keep requests on the accelerators.
    Returns ``{router: {... , gpu_request_share}}``.
    """

    duration = 2.0 if quick else 10.0
    traffic = BurstyTraffic(rate=rate, mix=WorkloadMix.of([model]))
    rows: dict[str, dict[str, float]] = {}
    for router in ("least-loaded", "energy-aware"):
        report = serve(traffic, Fleet.parse(fleet), policy="timeout",
                       router=router, duration=duration, seed=0)
        row = _report_row(report)
        gpu_requests = sum(replica.requests for replica in report.per_replica
                           if replica.target == "gpu")
        row["gpu_request_share"] = (gpu_requests / report.completed
                                    if report.completed else 0.0)
        rows[router] = row
    return rows
