"""Sequence-length scaling: the paper's linear-attention argument as data.

The core claim of ViTALiTy is asymptotic: softmax attention costs
``O(n^2 d)`` where the Taylor linear attention costs ``O(n d^2)``, so the
advantage grows with sequence length (Eqs. 1-3 put the ratio near ``n/d``).
The paper evaluates it only at ViT geometries (n <= 256); with workloads as
first-class configured names the scaling curve itself is a one-line sweep::

    Sweep().models("decoder").model_configs("tokens=128", ..., "tokens=4096")

:func:`seqscale_experiment` runs a platform baseline at both attention
formulations plus the ViTALiTy accelerator across a token ladder and
reports, per token count, the vanilla/taylor latency ratio and the exact
operation-count ratio — and the *crossover*: the first token count where
the Taylor formulation is strictly cheaper on the baseline platform.  (On
GPU-class devices the crossover sits well above ViT sequence lengths, which
is exactly the paper's Table II observation that general-purpose platforms
fail to cash in the linear attention; the op-count ratio crosses far
earlier, which is what the dedicated accelerator harvests.)
"""

from __future__ import annotations

from typing import Sequence

from repro.attention.op_counting import (
    count_taylor_attention_ops,
    count_vanilla_attention_ops,
)
from repro.engine import ResultCache, RunSpec, Sweep, get_target, simulate
from repro.workloads import get_workload

#: Token ladder: powers of two from BERT-short to GPT-context lengths.
DEFAULT_TOKENS = (128, 256, 512, 1024, 2048, 4096)


def seqscale_experiment(model: str = "decoder",
                        tokens: Sequence[int] = DEFAULT_TOKENS,
                        baseline: str = "gpu",
                        accelerator: str = "vitality",
                        jobs: int | None = None,
                        cache: ResultCache | None = None) -> dict[str, object]:
    """Sweep ``model`` across ``tokens`` on vanilla-vs-taylor targets.

    ``model`` is a workload family name (``"decoder"``, ``"deit-tiny"``, any
    family with a ``tokens`` knob); ``baseline`` a platform target evaluated
    at both attention formulations; ``accelerator`` the native-taylor
    accelerator scaled per the paper's peak-matching methodology.  Returns
    per-token rows plus the baseline's latency crossover and the exact
    op-count crossover.
    """

    if not tokens:
        raise ValueError("seqscale needs at least one token count")
    cache = ResultCache() if cache is None else cache
    knob_strings = [f"tokens={count}" for count in tokens]

    # Figs. 11-12 methodology: against a general-purpose platform the
    # accelerator's PE array is scaled up to the platform's peak throughput
    # (a scale at or below the native peak is a no-op the cache collapses).
    baseline_peak = get_target(baseline).peak_macs_per_second
    scale_to_peak = (baseline_peak
                     if hasattr(get_target(accelerator), "scaled_to_peak")
                     and baseline_peak > get_target(accelerator).peak_macs_per_second
                     else None)

    outcome = (Sweep()
               .models(model)
               .model_configs(knob_strings)
               .targets(baseline)
               .attentions("vanilla", "taylor")
               .run(cache=cache, jobs=jobs))
    latency = {(spec.model, spec.attention): result.end_to_end_latency
               for spec, result in zip(outcome.specs, outcome.results)}

    rows = []
    for count, knobs in zip(tokens, knob_strings):
        name = f"{model}[{knobs}]"
        workload = get_workload(name)
        vanilla_ops = count_vanilla_attention_ops(workload)
        taylor_ops = count_taylor_attention_ops(workload)
        accel = simulate(RunSpec(name, target=accelerator,
                                 scale_to_peak=scale_to_peak), cache=cache)
        vanilla_latency = latency[(name, "vanilla")]
        taylor_latency = latency[(name, "taylor")]
        rows.append({
            "tokens": count,
            "workload": workload.name,
            f"{baseline}_vanilla_ms": vanilla_latency * 1e3,
            f"{baseline}_taylor_ms": taylor_latency * 1e3,
            f"{accelerator}_ms": accel.end_to_end_latency * 1e3,
            "latency_ratio": vanilla_latency / taylor_latency,
            "op_ratio": vanilla_ops.total / taylor_ops.total,
        })

    def _crossover(key: str) -> int | None:
        for row in rows:
            if row[key] > 1.0:
                return row["tokens"]
        return None

    return {
        "model": model,
        "baseline": baseline,
        "accelerator": accelerator,
        "rows": rows,
        # First token count where Taylor is strictly cheaper (None: never
        # within the sweep) — measured on the platform and in exact op counts.
        "latency_crossover_tokens": _crossover("latency_ratio"),
        "op_crossover_tokens": _crossover("op_ratio"),
        "cache": {"hits": outcome.hits, "misses": outcome.misses,
                  "disk_hits": outcome.disk_hits},
    }
