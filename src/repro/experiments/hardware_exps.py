"""Hardware experiments: Figs. 11-12, Tables III/V/VI and the SALO comparison.

Every simulation here routes through :mod:`repro.engine` — experiments only
declare *what* to run (:class:`~repro.engine.RunSpec`) and compute ratios on
the uniform :class:`~repro.engine.RunResult`; the engine owns target
construction, peak scaling and result memoisation.  Tables III and VI read
static configuration inventories and need no simulation.
"""

from __future__ import annotations

from repro.engine import RunSpec, get_target, simulate
from repro.hardware import (
    SangerAcceleratorConfig,
    ViTALiTyAcceleratorConfig,
    linear_attention_processor_requirements,
)
from repro.workloads import list_workloads

#: Paper-reported average speedups / energy-efficiency gains (for EXPERIMENTS.md).
PAPER_FIG11_AVERAGE = {"gpu": 2.0, "sanger": 3.0, "edge_gpu": 30.0, "cpu": 53.0}
PAPER_FIG12_AVERAGE = {"sanger": 3.0, "gpu": 73.0, "edge_gpu": 67.0, "cpu": 115.0}
PAPER_ATTENTION_SPEEDUP = {"cpu": 236.0, "edge_gpu": 239.0, "gpu": 9.0, "sanger": 7.0}
PAPER_ATTENTION_ENERGY = {"cpu": 537.0, "edge_gpu": 309.0, "gpu": 187.0, "sanger": 6.0}

#: General-purpose platform baselines of Figs. 11-12.
PLATFORM_BASELINES = ("cpu", "edge_gpu", "gpu")


def _fig11_12_rows(models: tuple[str, ...] | None,
                   latency: bool) -> dict[str, dict[str, float]]:
    """Shared Fig. 11 (latency) / Fig. 12 (energy) structure.

    For each model, ViTALiTy is compared end-to-end and attention-only
    against Sanger as-is, and against each platform with its PE array scaled
    to the platform's peak throughput (the paper's comparison methodology).
    """

    def _end_to_end(result):
        return result.end_to_end_latency if latency else result.end_to_end_energy

    def _attention(result):
        return result.attention_latency if latency else result.attention_energy

    models = models or tuple(list_workloads())
    rows: dict[str, dict[str, float]] = {}
    for model in models:
        own = simulate(RunSpec(model, target="vitality"))
        sanger = simulate(RunSpec(model, target="sanger"))
        row = {
            "sanger": _end_to_end(sanger) / _end_to_end(own),
            "attention_sanger": _attention(sanger) / _attention(own),
        }
        for platform_name in PLATFORM_BASELINES:
            platform = simulate(RunSpec(model, target=platform_name))
            scaled = simulate(RunSpec(
                model, target="vitality",
                scale_to_peak=get_target(platform_name).peak_macs_per_second))
            row[platform_name] = _end_to_end(platform) / _end_to_end(scaled)
            row[f"attention_{platform_name}"] = _attention(platform) / _attention(scaled)
        rows[model] = row
    return rows


def fig11_latency_speedup(models: tuple[str, ...] | None = None) -> dict[str, dict[str, float]]:
    """Fig. 11: end-to-end (and attention-only) latency speedup of ViTALiTy.

    Returns ``{model: {baseline: speedup}}`` for the CPU / edge GPU / GPU
    platform models and the Sanger accelerator, plus ``attention_*`` entries
    for the attention-only speedups quoted in the text.
    """

    return _fig11_12_rows(models, latency=True)


def fig12_energy_efficiency(models: tuple[str, ...] | None = None) -> dict[str, dict[str, float]]:
    """Fig. 12: end-to-end (and attention-only) energy-efficiency improvement."""

    return _fig11_12_rows(models, latency=False)


def table3_configurations() -> dict[str, dict[str, float]]:
    """Table III: area/power inventories of the ViTALiTy and Sanger accelerators."""

    vitality = ViTALiTyAcceleratorConfig()
    sanger = SangerAcceleratorConfig()
    return {
        "vitality": {
            "total_area_mm2": vitality.total_area_mm2,
            "total_power_mw": vitality.total_power_mw,
            "sa_general_area_mm2": vitality.sa_general.area_mm2,
            "sa_general_power_mw": vitality.sa_general.power_mw,
        },
        "sanger": {
            "total_area_mm2": sanger.total_area_mm2,
            "total_power_mw": sanger.total_power_mw,
            "re_pe_area_mm2": sanger.re_pe_array.area_mm2,
            "re_pe_power_mw": sanger.re_pe_array.power_mw,
        },
    }


def table5_dataflow_energy(models: tuple[str, ...] = ("deit-base", "mobilevit-xxs",
                                                      "mobilevit-xs", "levit-128s", "levit-128")
                           ) -> dict[str, dict[str, dict[str, float]]]:
    """Table V: Taylor-attention energy under G-stationary vs down-forward dataflows."""

    rows: dict[str, dict[str, dict[str, float]]] = {}
    for model in models:
        per_dataflow: dict[str, dict[str, float]] = {}
        for dataflow in ("g_stationary", "down_forward"):
            result = simulate(RunSpec(model, target="vitality", dataflow=dataflow))
            breakdown = result.breakdown()
            per_dataflow[dataflow] = {
                "data_access_uj": breakdown["data_access"] * 1e6,
                "other_processors_uj": breakdown["other_processors"] * 1e6,
                "systolic_array_uj": breakdown["systolic_array"] * 1e6,
                "overall_uj": sum(breakdown.values()) * 1e6,
            }
        rows[model] = per_dataflow
    return rows


def table6_extension() -> dict[str, dict[str, object]]:
    """Table VI: pre/post-processors required by each linear-attention family."""

    requirements = linear_attention_processor_requirements()
    return {
        name: {
            "attention_type": req.attention_type,
            "model": req.model,
            "detail": req.detail,
            "processors": req.processor_list(),
        }
        for name, req in requirements.items()
    }


def salo_comparison(models: tuple[str, ...] = ("deit-tiny", "deit-small")) -> dict[str, float]:
    """Section V-C: attention speedup of ViTALiTy over SALO under the same budget."""

    speedups: dict[str, float] = {}
    for model in models:
        own = simulate(RunSpec(model, target="vitality", include_linear=False))
        other = simulate(RunSpec(model, target="salo"))
        speedups[model] = other.attention_latency / own.attention_latency
    return speedups


def pipeline_ablation(model: str = "deit-tiny") -> dict[str, float]:
    """Design-choice ablation: intra-layer pipelining on vs off."""

    pipelined = simulate(RunSpec(model, target="vitality", include_linear=False))
    sequential = simulate(RunSpec(model, target="vitality-unpipelined", include_linear=False))
    return {
        "pipelined_attention_ms": pipelined.attention_latency * 1e3,
        "sequential_attention_ms": sequential.attention_latency * 1e3,
        "throughput_gain": sequential.attention_latency / pipelined.attention_latency,
    }
