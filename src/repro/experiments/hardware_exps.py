"""Hardware experiments: Figs. 11-12, Tables III/V/VI and the SALO comparison."""

from __future__ import annotations

from repro.hardware import (
    Dataflow,
    SALOAccelerator,
    SangerAccelerator,
    SangerAcceleratorConfig,
    ViTALiTyAccelerator,
    ViTALiTyAcceleratorConfig,
    get_platform,
    linear_attention_processor_requirements,
)
from repro.workloads import get_workload, list_workloads

#: Paper-reported average speedups / energy-efficiency gains (for EXPERIMENTS.md).
PAPER_FIG11_AVERAGE = {"gpu": 2.0, "sanger": 3.0, "edge_gpu": 30.0, "cpu": 53.0}
PAPER_FIG12_AVERAGE = {"sanger": 3.0, "gpu": 73.0, "edge_gpu": 67.0, "cpu": 115.0}
PAPER_ATTENTION_SPEEDUP = {"cpu": 236.0, "edge_gpu": 239.0, "gpu": 9.0, "sanger": 7.0}
PAPER_ATTENTION_ENERGY = {"cpu": 537.0, "edge_gpu": 309.0, "gpu": 187.0, "sanger": 6.0}


def _vitality_result(model: str, peak_macs: float | None = None):
    accelerator = ViTALiTyAccelerator()
    if peak_macs is not None and peak_macs > accelerator.peak_macs_per_second:
        accelerator = accelerator.scaled_to_peak(peak_macs)
    return accelerator.run_model(get_workload(model))


def fig11_latency_speedup(models: tuple[str, ...] | None = None) -> dict[str, dict[str, float]]:
    """Fig. 11: end-to-end (and attention-only) latency speedup of ViTALiTy.

    Returns ``{model: {baseline: speedup}}`` for the CPU / edge GPU / GPU
    platform models and the Sanger accelerator, plus ``attention_*`` entries
    for the attention-only speedups quoted in the text.
    """

    models = models or tuple(list_workloads())
    sanger = SangerAccelerator()
    rows: dict[str, dict[str, float]] = {}
    for model in models:
        workload = get_workload(model)
        own = _vitality_result(model)
        sanger_result = sanger.run_model(workload)
        row = {
            "sanger": sanger_result.end_to_end_latency / own.end_to_end_latency,
            "attention_sanger": sanger_result.attention_latency / own.attention_latency,
        }
        for platform_name in ("cpu", "edge_gpu", "gpu"):
            platform = get_platform(platform_name)
            scaled = _vitality_result(model, peak_macs=platform.peak_macs_per_second)
            row[platform_name] = (platform.end_to_end_latency(workload)
                                  / scaled.end_to_end_latency)
            row[f"attention_{platform_name}"] = (platform.attention_latency(workload)
                                                 / scaled.attention_latency)
        rows[model] = row
    return rows


def fig12_energy_efficiency(models: tuple[str, ...] | None = None) -> dict[str, dict[str, float]]:
    """Fig. 12: end-to-end (and attention-only) energy-efficiency improvement."""

    models = models or tuple(list_workloads())
    sanger = SangerAccelerator()
    rows: dict[str, dict[str, float]] = {}
    for model in models:
        workload = get_workload(model)
        own = _vitality_result(model)
        sanger_result = sanger.run_model(workload)
        row = {
            "sanger": sanger_result.end_to_end_energy / own.end_to_end_energy,
            "attention_sanger": sanger_result.attention_energy / own.attention_energy,
        }
        for platform_name in ("cpu", "edge_gpu", "gpu"):
            platform = get_platform(platform_name)
            scaled = _vitality_result(model, peak_macs=platform.peak_macs_per_second)
            row[platform_name] = (platform.end_to_end_energy(workload)
                                  / scaled.end_to_end_energy)
            row[f"attention_{platform_name}"] = (platform.attention_energy(workload)
                                                 / scaled.attention_energy)
        rows[model] = row
    return rows


def table3_configurations() -> dict[str, dict[str, float]]:
    """Table III: area/power inventories of the ViTALiTy and Sanger accelerators."""

    vitality = ViTALiTyAcceleratorConfig()
    sanger = SangerAcceleratorConfig()
    return {
        "vitality": {
            "total_area_mm2": vitality.total_area_mm2,
            "total_power_mw": vitality.total_power_mw,
            "sa_general_area_mm2": vitality.sa_general.area_mm2,
            "sa_general_power_mw": vitality.sa_general.power_mw,
        },
        "sanger": {
            "total_area_mm2": sanger.total_area_mm2,
            "total_power_mw": sanger.total_power_mw,
            "re_pe_area_mm2": sanger.re_pe_array.area_mm2,
            "re_pe_power_mw": sanger.re_pe_array.power_mw,
        },
    }


def table5_dataflow_energy(models: tuple[str, ...] = ("deit-base", "mobilevit-xxs",
                                                      "mobilevit-xs", "levit-128s", "levit-128")
                           ) -> dict[str, dict[str, dict[str, float]]]:
    """Table V: Taylor-attention energy under G-stationary vs down-forward dataflows."""

    rows: dict[str, dict[str, dict[str, float]]] = {}
    for model in models:
        workload = get_workload(model)
        per_dataflow: dict[str, dict[str, float]] = {}
        for dataflow in (Dataflow.G_STATIONARY, Dataflow.DOWN_FORWARD):
            accelerator = ViTALiTyAccelerator(dataflow=dataflow)
            breakdown = accelerator.attention_energy_breakdown(workload)
            per_dataflow[dataflow.value] = {
                "data_access_uj": breakdown.data_access * 1e6,
                "other_processors_uj": breakdown.other_processors * 1e6,
                "systolic_array_uj": breakdown.systolic_array * 1e6,
                "overall_uj": breakdown.overall * 1e6,
            }
        rows[model] = per_dataflow
    return rows


def table6_extension() -> dict[str, dict[str, object]]:
    """Table VI: pre/post-processors required by each linear-attention family."""

    requirements = linear_attention_processor_requirements()
    return {
        name: {
            "attention_type": req.attention_type,
            "model": req.model,
            "detail": req.detail,
            "processors": req.processor_list(),
        }
        for name, req in requirements.items()
    }


def salo_comparison(models: tuple[str, ...] = ("deit-tiny", "deit-small")) -> dict[str, float]:
    """Section V-C: attention speedup of ViTALiTy over SALO under the same budget."""

    salo = SALOAccelerator()
    speedups: dict[str, float] = {}
    for model in models:
        workload = get_workload(model)
        own = ViTALiTyAccelerator().run_model(workload, include_linear=False)
        other = salo.run_model(workload)
        speedups[model] = other.attention_latency / own.attention_latency
    return speedups


def pipeline_ablation(model: str = "deit-tiny") -> dict[str, float]:
    """Design-choice ablation: intra-layer pipelining on vs off."""

    workload = get_workload(model)
    pipelined = ViTALiTyAccelerator(pipelined=True).run_model(workload, include_linear=False)
    sequential = ViTALiTyAccelerator(pipelined=False).run_model(workload, include_linear=False)
    return {
        "pipelined_attention_ms": pipelined.attention_latency * 1e3,
        "sequential_attention_ms": sequential.attention_latency * 1e3,
        "throughput_gain": sequential.attention_latency / pipelined.attention_latency,
    }
