"""LLM-serving experiments: continuous batching and pool disaggregation.

Two claims from the LLM-serving literature, reproduced on the paper's
hardware models via :func:`repro.serve.serve_llm`:

* **Continuous beats monolithic batching** on decode throughput.  A
  request-level gang decodes at its initial size until the *longest* member
  finishes, so early finishers pad every remaining step; iteration-level
  batching refills those slots the moment they free.  With variable output
  lengths on one colocated fleet at a saturating rate, the padding gap is
  the whole story — same replicas, same arrivals, same engine costs.
* **Disaggregation buys tail TPOT** under prefill-heavy load.  A colocated
  replica runs prompt chunks and decode steps on one engine, so every
  long-prompt admission stalls the in-flight decode batch for tens of
  milliseconds — a TPOT tail no amount of colocated capacity removes.
  Splitting the same replica count into dedicated prefill and decode pools
  isolates decode from those stalls: the disaggregated deployment meets a
  TTFT+TPOT SLO pair the equal-area colocated fleet misses on TPOT.
"""

from __future__ import annotations

from repro.engine import ResultCache
from repro.serve import (
    PoissonTraffic,
    ServeReport,
    TokenProfile,
    WorkloadMix,
    serve_llm,
)

#: Part-A settings: one colocated fleet at a decode-saturating rate with
#: variable output lengths (the spread monolithic gangs pad against).
BATCHING_FLEET = "2xvitality"
BATCHING_RATE = 40.0
BATCHING_TOKENS = TokenProfile.of(256, "16:128")

#: Part-B settings: prefill-heavy requests (long prompt, short output), one
#: replica budget split two ways, and the SLO pair that separates them.
DISAGG_COLOCATED = "4xvitality"
DISAGG_PREFILL = "3xvitality"
DISAGG_DECODE = "1xvitality"
DISAGG_RATE = 16.0
DISAGG_PROMPT_TOKENS = 2048
DISAGG_OUTPUT_TOKENS = 16
DISAGG_MAX_BATCH = 4
TTFT_SLO_SECONDS = 0.3
TPOT_SLO_SECONDS = 0.008


def _llm_row(report: ServeReport) -> dict[str, object]:
    ttft_p95 = report.ttft.quantile(0.95)
    tpot_p95 = report.tpot.quantile(0.95)
    return {
        "decode_tokens_per_second":
            round(report.llm["decode_tokens_per_second"], 1),
        "mean_decode_batch": round(report.llm["mean_decode_batch"], 2),
        "ttft_p95_ms": round(ttft_p95 * 1e3, 2),
        "tpot_p95_ms": round(tpot_p95 * 1e3, 2),
        "ttft_attainment": round(report.llm["ttft_attainment"], 3),
        "tpot_attainment": round(report.llm["tpot_attainment"], 3),
        "meets_slo_pair": bool(
            ttft_p95 <= report.llm["ttft_slo_seconds"]
            and tpot_p95 <= report.llm["tpot_slo_seconds"]),
        "completed": report.completed,
    }


def continuous_vs_disaggregated(quick: bool = True, model: str = "decoder"
                                ) -> dict[str, dict[str, object]]:
    """Both comparisons, on shared traffic per part.  Deterministic.

    Returns ``{label: row}`` where each row carries decode throughput, the
    mean decode batch, TTFT/TPOT p95 and attainment, and whether the
    deployment meets its SLO pair.  Expected shape: the continuous row's
    ``decode_tokens_per_second`` strictly exceeds the monolithic row's, and
    of the two part-B rows only the disaggregated one has
    ``meets_slo_pair``.
    """

    duration = 4.0 if quick else 16.0
    cache = ResultCache(max_entries=4096)
    rows: dict[str, dict[str, object]] = {}

    batching_traffic = PoissonTraffic(
        rate=BATCHING_RATE, mix=WorkloadMix.of([model], tokens=BATCHING_TOKENS))
    for scheduler in ("continuous", "monolithic"):
        report = serve_llm(batching_traffic, fleet=BATCHING_FLEET,
                           scheduler=scheduler, duration=duration, seed=0,
                           cache=cache)
        rows[f"batching: {scheduler} ({BATCHING_FLEET})"] = _llm_row(report)

    disagg_traffic = PoissonTraffic(rate=DISAGG_RATE,
                                    mix=WorkloadMix.of([model]))
    shared = dict(duration=duration, seed=0,
                  prompt_tokens=DISAGG_PROMPT_TOKENS,
                  output_tokens=DISAGG_OUTPUT_TOKENS,
                  max_batch=DISAGG_MAX_BATCH,
                  ttft_slo_seconds=TTFT_SLO_SECONDS,
                  tpot_slo_seconds=TPOT_SLO_SECONDS, cache=cache)
    report = serve_llm(disagg_traffic, fleet=DISAGG_COLOCATED, **shared)
    rows[f"pools: colocated ({DISAGG_COLOCATED})"] = _llm_row(report)
    report = serve_llm(disagg_traffic, prefill_fleet=DISAGG_PREFILL,
                       decode_fleet=DISAGG_DECODE, **shared)
    rows[f"pools: disaggregated ({DISAGG_PREFILL} + {DISAGG_DECODE})"] = \
        _llm_row(report)
    return rows
