"""Render experiment results as markdown tables (used by the CLI and EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_value(value) -> str:
    """Human-friendly formatting for mixed numeric/str cell values."""

    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, (list, tuple)):
        return ", ".join(format_value(item) for item in value)
    return str(value)


def markdown_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dictionaries as a GitHub-flavoured markdown table."""

    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    separator = "|" + "|".join("---" for _ in columns) + "|"
    body = []
    for row in rows:
        body.append("| " + " | ".join(format_value(row.get(column, "")) for column in columns) + " |")
    return "\n".join([header, separator] + body)


def nested_dict_table(data: Mapping[str, Mapping[str, object]], index_name: str = "name") -> str:
    """Render ``{row_name: {column: value}}`` mappings as a markdown table."""

    rows = []
    columns: list[str] = [index_name]
    for name, values in data.items():
        row: dict[str, object] = {index_name: name}
        if isinstance(values, Mapping):
            for key, value in values.items():
                row[key] = value
                if key not in columns:
                    columns.append(key)
        else:
            row["value"] = values
            if "value" not in columns:
                columns.append("value")
        rows.append(row)
    return markdown_table(rows, columns)


def _render_design_space(result: Mapping[str, object]) -> str:
    """Readable rendering of the DSE/roofline payload: frontier + demotions."""

    sections = []
    columns = ["target", "latency_ms", "energy_mj", "area_mm2", "peak_gmacs"]
    points = result.get("points") or []
    if any("dram_gbps" in point for point in points):
        columns += ["dram_gbps", "memory_bound_layers"]
    sections.append("## Pareto frontier\n\n"
                    + markdown_table(result["pareto_frontier"], columns))
    demotions = result.get("demotions")
    if demotions:
        sections.append("## Demotions (bigger array beaten by smaller + "
                        "bandwidth)\n\n"
                        + markdown_table(demotions,
                                         ["demoted", "demoted_by",
                                          "latency_ratio",
                                          "memory_bound_layers"]))
    sections.append(f"{len(result['pareto_frontier'])} Pareto-optimal of "
                    f"{result.get('evaluated', len(points))} design points")
    return "\n\n".join(sections)


def render_experiment(identifier: str, result) -> str:
    """Best-effort markdown rendering of any experiment driver's return value."""

    if isinstance(result, Mapping):
        if "pareto_frontier" in result and "points" in result:
            return _render_design_space(result)
        if result and all(isinstance(value, Mapping) for value in result.values()):
            return nested_dict_table(result)
        return nested_dict_table({identifier: result})
    if isinstance(result, Sequence) and not isinstance(result, str):
        if result and isinstance(result[0], Mapping):
            return markdown_table(result)
        rows = [{"index": index, "value": value} for index, value in enumerate(result)]
        return markdown_table(rows, ["index", "value"])
    return format_value(result)
