"""Experiment drivers: one callable per table/figure of the paper's evaluation.

Every experiment is registered in :mod:`repro.experiments.registry` under the
identifier used throughout DESIGN.md and EXPERIMENTS.md (``fig10``, ``tab1``,
...).  The benchmark harness in ``benchmarks/`` calls these drivers; they can
also be run directly:

    from repro.experiments import run_experiment
    result = run_experiment("tab1")
"""

from repro.experiments.registry import (
    ExperimentSpec,
    list_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments import (
    complexity,
    profiling_exps,
    hardware_exps,
    accuracy_exps,
    serving_exps,
    dse_exps,
    seqscale_exps,
    plan_exps,
)

__all__ = [
    "ExperimentSpec",
    "list_experiments",
    "get_experiment",
    "run_experiment",
    "complexity",
    "profiling_exps",
    "hardware_exps",
    "accuracy_exps",
    "serving_exps",
    "dse_exps",
    "seqscale_exps",
    "plan_exps",
]
