"""Profiling experiments: Fig. 1 runtime breakdown and Table II step profiles.

Table II routes through :mod:`repro.engine`: each (model, formulation) cell
is one platform :class:`~repro.engine.RunSpec` whose per-step records supply
the latency columns.  Fig. 1 is a runtime-share profile (fractions of the MHA
module, not a simulation run) and keeps using the profiling facade.
"""

from __future__ import annotations

from repro.engine import RunSpec, simulate
from repro.profiling.breakdown import mha_runtime_breakdown_table

#: Fig. 1 values from the paper: share of MHA runtime per step and platform.
PAPER_FIG1 = {
    "gpu": {"step1_qkv": 0.25, "step2_softmax_map": 0.52, "step3_attention_score": 0.23},
    "edge_gpu": {"step1_qkv": 0.21, "step2_softmax_map": 0.55, "step3_attention_score": 0.24},
    "pixel3": {"step1_qkv": 0.13, "step2_softmax_map": 0.58, "step3_attention_score": 0.29},
}

#: Table II overall latencies (ms) on the edge GPU from the paper.
PAPER_TABLE2_TOTALS = {
    "deit-tiny": {"taylor": 14.03, "vanilla": 11.65},
    "mobilevit-xs": {"taylor": 2.76, "vanilla": 1.79},
    "levit-128": {"taylor": 4.43, "vanilla": 2.76},
}


def fig1_runtime_breakdown(model: str = "deit-tiny") -> dict[str, dict[str, float]]:
    """Fig. 1: MHA runtime breakdown of DeiT-Tiny on GPU / edge GPU / Pixel 3."""

    return mha_runtime_breakdown_table(model)


def _step_columns(model: str, formulation: str, platform: str) -> dict[str, object]:
    """Per-step latency columns of one attention formulation, via the engine."""

    result = simulate(RunSpec(model, target=platform, attention=formulation,
                              include_linear=False))
    steps = {step.name: step.latency_seconds for step in result.layers[0].steps}
    total = result.attention_latency
    return {
        "ms": {name: latency * 1e3 for name, latency in steps.items()},
        "total_ms": total * 1e3,
        "ratios": {name: latency / total for name, latency in steps.items()},
    }


def table2_latency_profile(models: tuple[str, ...] = ("deit-tiny", "mobilevit-xs", "levit-128"),
                           platform: str = "edge_gpu") -> list[dict[str, object]]:
    """Table II: per-step latency of Taylor vs vanilla attention on the edge GPU."""

    rows = []
    for model in models:
        taylor = _step_columns(model, "taylor", platform)
        vanilla = _step_columns(model, "vanilla", platform)
        rows.append({
            "model": model,
            "platform": platform,
            "taylor_ms": taylor["ms"],
            "taylor_total_ms": taylor["total_ms"],
            "taylor_ratios": taylor["ratios"],
            "vanilla_ms": vanilla["ms"],
            "vanilla_total_ms": vanilla["total_ms"],
            "vanilla_ratios": vanilla["ratios"],
        })
    return rows
