"""Profiling experiments: Fig. 1 runtime breakdown and Table II step profiles."""

from __future__ import annotations

from repro.profiling.breakdown import mha_runtime_breakdown_table, table2_rows

#: Fig. 1 values from the paper: share of MHA runtime per step and platform.
PAPER_FIG1 = {
    "gpu": {"step1_qkv": 0.25, "step2_softmax_map": 0.52, "step3_attention_score": 0.23},
    "edge_gpu": {"step1_qkv": 0.21, "step2_softmax_map": 0.55, "step3_attention_score": 0.24},
    "pixel3": {"step1_qkv": 0.13, "step2_softmax_map": 0.58, "step3_attention_score": 0.29},
}

#: Table II overall latencies (ms) on the edge GPU from the paper.
PAPER_TABLE2_TOTALS = {
    "deit-tiny": {"taylor": 14.03, "vanilla": 11.65},
    "mobilevit-xs": {"taylor": 2.76, "vanilla": 1.79},
    "levit-128": {"taylor": 4.43, "vanilla": 2.76},
}


def fig1_runtime_breakdown(model: str = "deit-tiny") -> dict[str, dict[str, float]]:
    """Fig. 1: MHA runtime breakdown of DeiT-Tiny on GPU / edge GPU / Pixel 3."""

    return mha_runtime_breakdown_table(model)


def table2_latency_profile(models: tuple[str, ...] = ("deit-tiny", "mobilevit-xs", "levit-128")
                           ) -> list[dict[str, object]]:
    """Table II: per-step latency of Taylor vs vanilla attention on the edge GPU."""

    return table2_rows(models)
