"""Complexity experiments: Table I operation counts and Table IV FLOPs."""

from __future__ import annotations

from repro.attention.op_counting import (
    count_taylor_attention_ops,
    count_vanilla_attention_ops,
    operation_ratio_additions,
    operation_ratio_divisions,
    operation_ratio_multiplications,
)
from repro.profiling.flops import attention_flops_table
from repro.workloads import get_workload

#: Values Table I reports (millions of operations), for the EXPERIMENTS.md comparison.
PAPER_TABLE1 = {
    "deit-tiny": {"vitality_mul": 58.3, "baseline_mul": 178.8, "ratio": 3.1},
    "mobilevit-xs": {"vitality_mul": 4.8, "baseline_mul": 28.4, "ratio": 5.9},
    "levit-128": {"vitality_mul": 3.4, "baseline_mul": 36.4, "ratio": 10.7},
}


def table1_op_counts(models: tuple[str, ...] = ("deit-tiny", "mobilevit-xs", "levit-128")
                     ) -> dict[str, dict[str, float]]:
    """Table I: operation counts (millions) of ViTALiTy vs vanilla attention."""

    rows: dict[str, dict[str, float]] = {}
    for name in models:
        workload = get_workload(name)
        vitality = count_taylor_attention_ops(workload).in_millions()
        baseline = count_vanilla_attention_ops(workload).in_millions()
        rows[name] = {
            "vitality_mul_m": vitality["Mul"],
            "vitality_add_m": vitality["Add"],
            "vitality_div_m": vitality["Div"],
            "baseline_mul_m": baseline["Mul"],
            "baseline_add_m": baseline["Add"],
            "baseline_div_m": baseline["Div"],
            "baseline_exp_m": baseline["Exp"],
            "ratio_mul": baseline["Mul"] / vitality["Mul"],
            "ratio_add": baseline["Add"] / vitality["Add"],
            "ratio_div": baseline["Div"] / vitality["Div"],
        }
    return rows


def closed_form_ratios(tokens: int = 197, head_dim: int = 64) -> dict[str, float]:
    """Eqs. (1)-(3): closed-form operation-count reduction ratios."""

    return {
        "multiplications": operation_ratio_multiplications(tokens, head_dim),
        "additions": operation_ratio_additions(tokens, head_dim),
        "divisions": operation_ratio_divisions(tokens, head_dim),
        "n_over_d": tokens / head_dim,
    }


def table4_flops(model: str = "deit-tiny") -> dict[str, dict[str, float | str]]:
    """Table IV: attention FLOPs per method (accuracy filled in by the training run)."""

    return attention_flops_table(model)
