"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Both formats are rendered deterministically — dict iteration is insertion
ordered and every cross-replica listing is sorted — so a fixed seed yields
byte-identical files, which the tests pin down the same way they pin
``ServeReport.to_json``.
"""

from __future__ import annotations

import json

from .streaming import MetricsCollector
from .trace import TraceRecorder


# ------------------------------------------------------------ Chrome traces

def chrome_trace(recorder: TraceRecorder) -> dict[str, object]:
    """The trace as a JSON-object trace (what Perfetto's open-file loads)."""

    return {"traceEvents": recorder.events(), "displayTimeUnit": "ms"}


def chrome_trace_json(recorder: TraceRecorder) -> str:
    return json.dumps(chrome_trace(recorder), separators=(",", ":"))


def write_chrome_trace(recorder: TraceRecorder, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(recorder))
        handle.write("\n")


# --------------------------------------------------------- Prometheus text

def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labels(**labels: str) -> str:
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}" if inner else ""


def _format(value: float) -> str:
    return repr(float(value))


class _Lines:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value: float, *, timestamp_ms: int | None = None,
               **labels: str) -> None:
        line = f"{name}{_labels(**labels)} {_format(value)}"
        if timestamp_ms is not None:
            line += f" {timestamp_ms}"
        self.lines.append(line)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _summary_block(out: _Lines, name: str, help_text: str, latency,
                   **labels: str) -> None:
    """One Prometheus summary (quantiles + _sum/_count) from a sketch."""

    out.header(name, "summary", help_text)
    for fraction in sorted(latency._sketches):
        out.sample(name, latency.quantile(fraction),
                   quantile=f"{fraction:g}", **labels)
    out.sample(f"{name}_sum", latency.total, **labels)
    out.sample(f"{name}_count", latency.count, **labels)


def prometheus_text(metrics: MetricsCollector) -> str:
    """Render the collector in the Prometheus text exposition format.

    Run-level counters and latency summaries come first, then per-replica
    per-window gauges stamped with the *simulated* time of each window's
    end (milliseconds, the exposition format's timestamp unit) — scraping
    semantics for a finished simulation are "here is the whole series".
    """

    out = _Lines()
    report = metrics.report

    out.header("repro_requests_offered_total", "counter",
               "Requests offered to the fleet over the run.")
    offered = (report.offered if report is not None
               else sum(metrics.arrivals))
    out.sample("repro_requests_offered_total", offered)
    out.header("repro_requests_completed_total", "counter",
               "Requests completed over the run.")
    completed = (report.completed if report is not None
                 else sum(metrics.completions))
    out.sample("repro_requests_completed_total", completed)
    if report is not None:
        out.header("repro_throughput_rps", "gauge",
                   "Completed requests per simulated second (whole run).")
        out.sample("repro_throughput_rps", report.throughput_rps)
        out.header("repro_slo_violation_ratio", "gauge",
                   "Fraction of completed requests over the latency SLO.")
        out.sample("repro_slo_violation_ratio", report.slo_violation_rate)
        out.header("repro_energy_joules_total", "counter",
                   "Fleet energy over the run.")
        out.sample("repro_energy_joules_total", report.total_energy_joules)

    _summary_block(out, "repro_request_latency_seconds",
                   "End-to-end request latency (P2 streaming estimate).",
                   metrics.latency)
    if metrics.queue_wait.count:
        _summary_block(out, "repro_request_queue_wait_seconds",
                       "Time from arrival to dispatch (P2 streaming estimate).",
                       metrics.queue_wait)
    if metrics.ttft.count:
        _summary_block(out, "repro_request_ttft_seconds",
                       "Time to first token (P2 streaming estimate).",
                       metrics.ttft)
    if metrics.tpot.count:
        _summary_block(out, "repro_request_tpot_seconds",
                       "Time per output token (P2 streaming estimate).",
                       metrics.tpot)

    window_ms = metrics.window_seconds * 1e3

    def stamp(bucket: int) -> int:
        return int((bucket + 1) * window_ms)

    names = sorted(metrics.replicas)
    if names:
        out.header("repro_replica_utilization", "gauge",
                   "Busy fraction of each replica per window.")
        for name in names:
            for bucket, busy in enumerate(metrics.replicas[name].busy):
                out.sample("repro_replica_utilization",
                           busy / metrics.window_seconds,
                           timestamp_ms=stamp(bucket), replica=name)
        out.header("repro_replica_queue_depth", "gauge",
                   "Peak queue depth of each replica per window.")
        for name in names:
            for bucket, depth in enumerate(metrics.replicas[name].queue_depth):
                out.sample("repro_replica_queue_depth", depth,
                           timestamp_ms=stamp(bucket), replica=name)
        out.header("repro_replica_mean_batch_size", "gauge",
                   "Mean dispatched batch size of each replica per window.")
        for name in names:
            series = metrics.replicas[name]
            for bucket, count in enumerate(series.batch_count):
                if count:
                    out.sample("repro_replica_mean_batch_size",
                               series.batch_sum[bucket] / count,
                               timestamp_ms=stamp(bucket), replica=name)
        if any(metrics.replicas[name].kv_capacity for name in names):
            out.header("repro_replica_kv_used_tokens", "gauge",
                       "Peak KV-cache tokens held per replica per window.")
            for name in names:
                series = metrics.replicas[name]
                if not series.kv_capacity:
                    continue
                for bucket, used in enumerate(series.kv_used):
                    out.sample("repro_replica_kv_used_tokens", used,
                               timestamp_ms=stamp(bucket), replica=name)
            out.header("repro_replica_kv_capacity_tokens", "gauge",
                       "KV-cache capacity per replica.")
            for name in names:
                if metrics.replicas[name].kv_capacity:
                    out.sample("repro_replica_kv_capacity_tokens",
                               metrics.replicas[name].kv_capacity, replica=name)
    return out.render()


def write_prometheus(metrics: MetricsCollector, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics))
