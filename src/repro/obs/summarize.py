"""Critical-path analysis of a recorded Chrome trace.

``repro trace summarize trace.json`` loads a trace written by
:func:`repro.obs.export.write_chrome_trace` and answers "where did request
time go": total seconds and share per lifecycle phase (queue vs prefill vs
decode vs handoff), broken down per model and per replica kind.  It works
from the trace file alone — no simulator state — so it applies equally to
a trace produced five PRs from now, as long as the span schema holds.
"""

from __future__ import annotations

import json

from .trace import PHASES, PID_FLEET, PID_REQUESTS


def load_trace(path) -> dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents key)")
    return trace


def _replica_kind(name: str) -> str:
    """``vitality#2`` -> ``vitality`` (fleet ordinals share one spec)."""

    return name.rsplit("#", 1)[0]


def summarize_trace(trace: dict[str, object]) -> dict[str, object]:
    """Fold a loaded trace into the critical-path payload.

    Returns plain JSON-ready data: run totals, per-phase seconds/share,
    and per-model / per-replica-kind phase breakdowns.
    """

    phase_seconds = {phase: 0.0 for phase in PHASES}
    phase_spans = {phase: 0 for phase in PHASES}
    per_model: dict[str, dict[str, float]] = {}
    per_kind: dict[str, dict[str, float]] = {}
    per_stage: dict[str, dict[str, float]] = {}
    requests: set[int] = set()
    fleet_busy: dict[str, float] = {}

    for event in trace["traceEvents"]:
        if event.get("ph") != "X":
            continue
        seconds = float(event.get("dur", 0.0)) / 1e6
        pid = event.get("pid")
        if pid == PID_REQUESTS:
            args = event.get("args", {})
            phase = args.get("phase")
            if phase not in phase_seconds:
                continue
            requests.add(event["tid"])
            phase_seconds[phase] += seconds
            phase_spans[phase] += 1
            model = args.get("model", "?")
            per_model.setdefault(model, dict.fromkeys(PHASES, 0.0))
            per_model[model][phase] += seconds
            kind = _replica_kind(str(args.get("replica", "?")))
            per_kind.setdefault(kind, dict.fromkeys(PHASES, 0.0))
            per_kind[kind][phase] += seconds
            stage = args.get("stage")
            if stage is not None:
                per_stage.setdefault(str(stage), dict.fromkeys(PHASES, 0.0))
                per_stage[str(stage)][phase] += seconds
        elif pid == PID_FLEET and event.get("cat") != "autoscaler":
            args = event.get("args", {})
            name = str(args.get("replica", ""))
            if name:
                kind = _replica_kind(name)
                fleet_busy[kind] = fleet_busy.get(kind, 0.0) + seconds

    total = sum(phase_seconds.values())

    def rows(by_phase: dict[str, float]) -> dict[str, object]:
        subtotal = sum(by_phase.values())
        return {
            "total_seconds": subtotal,
            "phases": {phase: {"seconds": by_phase[phase],
                               "share": (by_phase[phase] / subtotal
                                         if subtotal else 0.0)}
                       for phase in PHASES if by_phase[phase] > 0.0}}

    present = [phase for phase in PHASES if phase_spans[phase]]
    payload: dict[str, object] = {
        "requests": len(requests),
        "total_request_seconds": total,
        "phases": [
            {"phase": phase,
             "seconds": phase_seconds[phase],
             "share": phase_seconds[phase] / total if total else 0.0,
             "spans": phase_spans[phase],
             "mean_ms": (phase_seconds[phase] / phase_spans[phase] * 1e3
                         if phase_spans[phase] else 0.0)}
            for phase in present],
        "per_model": {model: rows(by_phase)
                      for model, by_phase in sorted(per_model.items())},
        "per_replica_kind": {kind: rows(by_phase)
                             for kind, by_phase in sorted(per_kind.items())},
        "fleet_busy_seconds": {kind: fleet_busy[kind]
                               for kind in sorted(fleet_busy)},
    }
    if per_stage:                  # only pipeline traces carry stage-tagged spans
        payload["per_stage"] = {stage: rows(by_phase)
                                for stage, by_phase in sorted(per_stage.items())}
    return payload


def format_summary(payload: dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""

    lines = [f"requests traced: {payload['requests']}",
             f"total request-seconds: {payload['total_request_seconds']:.3f}",
             "", "critical path:"]
    for row in payload["phases"]:
        lines.append(f"  {row['phase']:<12} {row['seconds']:>10.3f}s  "
                     f"{row['share']:>6.1%}  "
                     f"(mean {row['mean_ms']:.2f} ms over {row['spans']} spans)")

    def section(title: str, table: dict[str, dict[str, object]]) -> None:
        if not table:
            return
        lines.extend(["", f"{title}:"])
        for key, entry in table.items():
            shares = "  ".join(
                f"{phase} {cell['share']:.1%}"
                for phase, cell in entry["phases"].items())
            lines.append(f"  {key:<24} {entry['total_seconds']:>10.3f}s  {shares}")

    section("per model", payload["per_model"])
    section("per replica kind", payload["per_replica_kind"])
    section("per stage", payload.get("per_stage", {}))
    if payload["fleet_busy_seconds"]:
        lines.extend(["", "fleet busy-seconds by replica kind:"])
        for kind, seconds in payload["fleet_busy_seconds"].items():
            lines.append(f"  {kind:<24} {seconds:>10.3f}s")
    return "\n".join(lines)
