"""Chrome trace-event recording for serving runs.

A :class:`TraceRecorder` collects trace events in the Chrome trace-event
JSON format (the one Perfetto and ``chrome://tracing`` load): complete
spans (``ph: "X"``), instants (``"i"``), counters (``"C"``) and metadata
(``"M"``) naming processes and threads.  Simulated seconds map to trace
microseconds as plain floats — the format allows fractional timestamps,
and keeping the full double precision is what lets per-request phase
spans sum exactly to the report's request latency.

Track layout (see :mod:`repro.obs.hooks` for who emits what):

* pid :data:`PID_FLEET` ("fleet") — one thread per replica carrying its
  busy spans (batches, prefill chunks, decode steps), plus thread 0 for
  autoscaler instants.
* pid :data:`PID_REQUESTS` ("requests") — one thread per request index
  carrying that request's phase spans, colored by phase.

Pipeline runs (:func:`repro.serve.serve_pipeline`) reuse the ``queue`` /
``service`` / ``handoff`` phases with a ``stage`` arg naming the pipeline
stage, so one request's track chains per-stage queue→service spans joined
by handoffs — still partitioning arrival→completion exactly.
"""

from __future__ import annotations

from typing import Mapping

#: Chrome trace process ids — one synthetic "process" per track family.
PID_FLEET = 1
PID_REQUESTS = 2
#: Thread id carrying autoscaler instants inside the fleet process
#: (replica threads are ``replica.index + 1``).
TID_AUTOSCALER = 0

#: Request lifecycle phases, in critical-path order.  ``queue`` and
#: ``service`` partition a classic request's latency; ``queue``,
#: ``prefill``, ``handoff``, ``decode-wait`` and ``decode`` partition an
#: LLM request's.
PHASE_QUEUE = "queue"
PHASE_SERVICE = "service"
PHASE_PREFILL = "prefill"
PHASE_HANDOFF = "handoff"
PHASE_DECODE_WAIT = "decode-wait"
PHASE_DECODE = "decode"
PHASES = (PHASE_QUEUE, PHASE_SERVICE, PHASE_PREFILL, PHASE_HANDOFF,
          PHASE_DECODE_WAIT, PHASE_DECODE)

#: Chrome reserved color names (``cname``) per phase — stable across loads,
#: unlike the default name-hash coloring.
PHASE_COLORS = {
    PHASE_QUEUE: "grey",
    PHASE_SERVICE: "thread_state_running",
    PHASE_PREFILL: "thread_state_running",
    PHASE_HANDOFF: "olive",
    PHASE_DECODE_WAIT: "yellow",
    PHASE_DECODE: "thread_state_runnable",
}


def _microseconds(seconds: float) -> float:
    return seconds * 1e6


class TraceRecorder:
    """Accumulates Chrome trace events; export via :mod:`repro.obs.export`.

    Events are appended in simulation order, so two runs with the same seed
    produce identical event lists — the exporters keep that ordering, which
    is what makes trace files byte-deterministic.
    """

    def __init__(self) -> None:
        self._events: list[dict[str, object]] = []
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    def __len__(self) -> int:
        return len(self._events)

    def process(self, pid: int, name: str) -> None:
        """Name a trace process (idempotent)."""

        self._process_names.setdefault(pid, name)

    def thread(self, pid: int, tid: int, name: str) -> None:
        """Name a trace thread (idempotent)."""

        self._thread_names.setdefault((pid, tid), name)

    def span(self, name: str, *, start: float, end: float, pid: int, tid: int,
             cat: str, args: Mapping[str, object] | None = None,
             color: str | None = None) -> None:
        """One complete ("X") span; ``start``/``end`` in simulated seconds."""

        event: dict[str, object] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": _microseconds(start), "dur": _microseconds(end - start),
            "pid": pid, "tid": tid}
        if color is not None:
            event["cname"] = color
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def instant(self, name: str, *, ts: float, pid: int, tid: int, cat: str,
                args: Mapping[str, object] | None = None) -> None:
        """One instant ("i") event at ``ts`` simulated seconds."""

        event: dict[str, object] = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": _microseconds(ts), "pid": pid, "tid": tid}
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def counter(self, name: str, *, ts: float, pid: int, tid: int = 0,
                values: Mapping[str, float] | None = None) -> None:
        """One counter ("C") sample — Perfetto renders these as track graphs."""

        self._events.append({
            "name": name, "ph": "C", "ts": _microseconds(ts),
            "pid": pid, "tid": tid, "args": dict(values or {})})

    def events(self) -> list[dict[str, object]]:
        """Metadata (sorted by pid/tid, ts 0) followed by recorded events."""

        metadata: list[dict[str, object]] = [
            {"name": "process_name", "ph": "M", "ts": 0.0, "pid": pid,
             "tid": 0, "args": {"name": name}}
            for pid, name in sorted(self._process_names.items())]
        metadata.extend(
            {"name": "thread_name", "ph": "M", "ts": 0.0, "pid": pid,
             "tid": tid, "args": {"name": name}}
            for (pid, tid), name in sorted(self._thread_names.items()))
        return metadata + self._events
