"""The observer the simulators call: one object, many optional sinks.

:class:`Observability` bundles an optional :class:`TraceRecorder`, an
optional :class:`MetricsCollector` and an optional :class:`Progress` and
translates simulator lifecycle hooks into trace spans, streaming samples
and progress ticks.  The simulators (`serve`, `serve_llm`, the autoscaler)
accept ``obs=None`` and guard every hook with ``if obs is not None`` — the
disabled path stays the exact pre-observability code — and the hooks
themselves never mutate simulator state, so an instrumented run produces a
bit-identical :class:`ServeReport`.

Span accounting contract (the tests pin it): each request's phase spans
partition ``[arrival, completion]`` — ``queue`` + ``service`` for classic
requests, ``queue`` + ``prefill`` (+ ``handoff`` + ``decode-wait`` +
``decode``) for LLM requests, and per-stage ``queue`` + ``service``
(+ ``handoff`` between stages) chains for pipeline requests — so their
durations sum to the report's latency for that request, exactly in float.
"""

from __future__ import annotations

from .progress import Progress
from .streaming import MetricsCollector
from .trace import (
    PHASE_COLORS,
    PHASE_DECODE,
    PHASE_DECODE_WAIT,
    PHASE_HANDOFF,
    PHASE_PREFILL,
    PHASE_QUEUE,
    PHASE_SERVICE,
    PID_FLEET,
    PID_REQUESTS,
    TID_AUTOSCALER,
    TraceRecorder,
)


class Observability:
    """Observer threaded through a serving run (all sinks optional)."""

    def __init__(self, trace: TraceRecorder | None = None,
                 metrics: MetricsCollector | None = None,
                 progress: Progress | None = None):
        self.trace = trace
        self.metrics = metrics
        self.progress = progress
        self._passive = trace is None and metrics is None
        # Per-run request state for wait/decode span boundaries.
        self._wait_start: dict[int, float] = {}
        self._decode_start: dict[int, float] = {}
        self._tracked: set[int] = set()

    # ---------------------------------------------------------- run lifecycle

    def begin_run(self, replicas, label: str) -> None:
        self._wait_start.clear()
        self._decode_start.clear()
        self._tracked.clear()
        if self.trace is not None:
            self.trace.process(PID_FLEET, "fleet")
            self.trace.process(PID_REQUESTS, "requests")
            self.trace.thread(PID_FLEET, TID_AUTOSCALER, "autoscaler")
            for replica in replicas:
                self._track(replica)
        if self.progress is not None:
            self.progress.begin(label)

    def end_run(self, report) -> None:
        if self.metrics is not None:
            self.metrics.finalize(report)
        if self.progress is not None:
            self.progress.finish()

    def event_tick(self, now: float) -> None:
        if self.progress is not None:
            self.progress.tick(now)

    # ------------------------------------------------------------- internals

    def _track(self, replica) -> None:
        if replica.index not in self._tracked:
            self._tracked.add(replica.index)
            self.trace.thread(PID_FLEET, replica.index + 1, replica.name)

    def _request_span(self, phase: str, index: int, model: str,
                      replica_name: str, start: float, end: float,
                      stage: str | None = None) -> None:
        if end <= start:
            return                       # zero-width phases add nothing
        args: dict[str, object] = {"phase": phase, "request": index,
                                   "model": model, "replica": replica_name}
        if stage is not None:
            args["stage"] = stage
        self.trace.span(phase, start=start, end=end, pid=PID_REQUESTS,
                        tid=index, cat="request",
                        color=PHASE_COLORS[phase], args=args)

    def _queue_counter(self, replica, now: float, depth: int) -> None:
        if self.trace is not None:
            self.trace.counter(f"queue {replica.name}", ts=now, pid=PID_FLEET,
                               values={"depth": depth})
        if self.metrics is not None:
            self.metrics.on_queue_depth(replica.name, now, depth)

    def _kv_counter(self, replica, now: float) -> None:
        if self.trace is not None:
            self.trace.counter(f"kv {replica.name}", ts=now, pid=PID_FLEET,
                               values={"used": replica.kv_used})
        if self.metrics is not None:
            self.metrics.on_kv(replica.name, now, replica.kv_used,
                               replica.kv_capacity)

    # ------------------------------------------------------- classic serving

    def request_routed(self, request, replica, now: float, depth: int) -> None:
        """A request landed on a replica's queue (classic or prefill)."""

        if self._passive:
            return
        if self.metrics is not None:
            self.metrics.on_arrival(now)
        self._queue_counter(replica, now, depth)

    def batch_dispatched(self, replica, batch, now: float, finish: float) -> None:
        """Classic dispatch: whole batch runs as one monolithic job."""

        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            model = batch[0].model
            self.trace.span(f"{model} x{len(batch)}", start=now, end=finish,
                            pid=PID_FLEET, tid=replica.index + 1, cat="dispatch",
                            args={"replica": replica.name, "model": model,
                                  "batch_size": len(batch)})
            for request in batch:
                self._request_span(PHASE_QUEUE, request.index, request.model,
                                   replica.name, request.arrival, now)
                self._request_span(PHASE_SERVICE, request.index, request.model,
                                   replica.name, now, finish)
        if self.metrics is not None:
            self.metrics.on_dispatch(replica.name, now, finish, len(batch),
                                     requests=len(batch))
            for request in batch:
                self.metrics.on_completion(finish, finish - request.arrival,
                                           queue_wait=now - request.arrival)
        self._queue_counter(replica, now, len(replica.queue))

    def replica_retired(self, replica, now: float) -> None:
        """A drained replica went idle with an empty queue."""

        if self.trace is not None:
            self._track(replica)
            self.trace.instant("retired", ts=now, pid=PID_FLEET,
                               tid=TID_AUTOSCALER, cat="autoscaler",
                               args={"replica": replica.name})

    def scale_event(self, event) -> None:
        """The autoscaler recorded a :class:`ScaleEvent` (not ``retired`` —
        those surface through :meth:`replica_retired` at drain time)."""

        if self.trace is not None:
            self.trace.instant(event.action, ts=event.time, pid=PID_FLEET,
                               tid=TID_AUTOSCALER, cat="autoscaler",
                               args={"replica": event.replica,
                                     "detail": event.detail})

    # ------------------------------------------------------ pipeline serving

    def pipeline_routed(self, request, replica, now: float, depth: int,
                        entry: bool) -> None:
        """A request landed on one stage's queue; ``entry`` marks arrival at
        the pipeline's entry stage (the only hop counted as an arrival)."""

        if self._passive:
            return
        if self.metrics is not None and entry:
            self.metrics.on_arrival(now)
        self._queue_counter(replica, now, depth)

    def stage_dispatched(self, replica, batch, now: float, finish: float,
                         stage: str) -> None:
        """One stage batch ran; per-request queue/service spans carry the
        stage name so per-request tracks partition arrival→completion."""

        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            model = batch[0].model
            self.trace.span(f"{model} x{len(batch)}", start=now, end=finish,
                            pid=PID_FLEET, tid=replica.index + 1, cat="dispatch",
                            args={"replica": replica.name, "model": model,
                                  "batch_size": len(batch), "stage": stage})
            for request in batch:
                self._request_span(PHASE_QUEUE, request.index, request.model,
                                   replica.name, request.arrival, now,
                                   stage=stage)
                self._request_span(PHASE_SERVICE, request.index, request.model,
                                   replica.name, now, finish, stage=stage)
        if self.metrics is not None:
            self.metrics.on_dispatch(replica.name, now, finish, len(batch),
                                     requests=len(batch))
        self._queue_counter(replica, now, len(replica.queue))

    def stage_handoff(self, index: int, model: str, replica_name: str,
                      now: float, arrival: float, stage: str) -> None:
        """The request is in flight from ``stage`` to its successor."""

        if self._passive:
            return
        if self.trace is not None:
            self._request_span(PHASE_HANDOFF, index, model, replica_name,
                               now, arrival, stage=stage)

    def pipeline_completed(self, index: int, model: str, arrival: float,
                           queue_wait: float, completion: float) -> None:
        """The request exited the pipeline; one end-to-end completion."""

        if self._passive:
            return
        if self.metrics is not None:
            self.metrics.on_completion(completion, completion - arrival,
                                       queue_wait=queue_wait)

    # ----------------------------------------------------------- LLM serving

    def prefill_admitted(self, request, replica, now: float) -> None:
        """KV reserved and prefill started: the queue phase ends here."""

        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            self._request_span(PHASE_QUEUE, request.index, request.model,
                               replica.name, request.arrival, now)
        if self.metrics is not None:
            self.metrics.on_queue_depth(replica.name, now,
                                        len(replica.prefill_queue))
        self._kv_counter(replica, now)

    def prefill_chunk(self, replica, request, start: float, end: float,
                      chunk: int) -> None:
        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            self.trace.span(f"prefill {request.model}", start=start, end=end,
                            pid=PID_FLEET, tid=replica.index + 1, cat="prefill",
                            args={"replica": replica.name, "request": request.index,
                                  "tokens": chunk})
        if self.metrics is not None:
            self.metrics.on_dispatch(replica.name, start, end, 1)

    def prefill_finished(self, request, replica, now: float) -> None:
        """First token out: the prefill phase spans admission to here."""

        if self.trace is not None and request.prefill_start is not None:
            self._request_span(PHASE_PREFILL, request.index, request.model,
                               replica.name, request.prefill_start, now)

    def decode_pending(self, request, now: float) -> None:
        """Colocated: prefill done, awaiting a decode-batch slot."""

        if not self._passive:
            self._wait_start[request.index] = now

    def handoff(self, request, replica, now: float, arrival: float) -> None:
        """Disaggregated: KV in flight from ``replica`` to the decode pool."""

        if self._passive:
            return
        if self.trace is not None:
            self._request_span(PHASE_HANDOFF, request.index, request.model,
                               replica.name, now, arrival)
        self._wait_start[request.index] = arrival
        self._kv_counter(replica, now)       # prefill-side KV released

    def decode_admitted(self, request, replica, now: float) -> None:
        """Disaggregated: decode-pool KV reserved for this request."""

        if not self._passive:
            self._kv_counter(replica, now)

    def decode_joined(self, request, replica, now: float) -> None:
        """The request entered a running decode batch."""

        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            start = self._wait_start.pop(request.index, None)
            if start is not None:
                self._request_span(PHASE_DECODE_WAIT, request.index,
                                   request.model, replica.name, start, now)
        else:
            self._wait_start.pop(request.index, None)
        self._decode_start[request.index] = now

    def decode_step(self, replica, batch, start: float, end: float) -> None:
        """One decode iteration over the current batch (or gang)."""

        if self._passive:
            return
        if self.trace is not None:
            self._track(replica)
            self.trace.span(f"decode x{len(batch)}", start=start, end=end,
                            pid=PID_FLEET, tid=replica.index + 1, cat="decode",
                            args={"replica": replica.name,
                                  "model": batch[0].model,
                                  "batch_size": len(batch)})
        if self.metrics is not None:
            self.metrics.on_dispatch(replica.name, start, end, len(batch))

    def request_completed(self, request, replica, now: float,
                          batch_size: int) -> None:
        """Last token out (LLM path); KV already released by the caller."""

        if self._passive:
            return
        if self.trace is not None:
            start = self._decode_start.pop(request.index,
                                           request.first_token_time)
            if start is not None:
                self._request_span(PHASE_DECODE, request.index, request.model,
                                   replica.name, start, now)
        else:
            self._decode_start.pop(request.index, None)
        self._wait_start.pop(request.index, None)
        self._kv_counter(replica, now)
        if self.metrics is not None:
            first = request.first_token_time
            self.metrics.on_completion(
                now, now - request.arrival,
                queue_wait=(request.prefill_start - request.arrival
                            if request.prefill_start is not None else None))
            if first is not None:
                self.metrics.on_ttft(first - request.arrival)
                if request.decode_target:
                    self.metrics.on_tpot((now - first) / request.decode_target)
