"""Stderr progress reporting for long simulator and planner runs.

The simulator calls :meth:`Progress.tick` once per event-loop iteration, so
the hot path must be nearly free: a bitmask gate skips 63 of every 64 calls
before any clock is read, and a monotonic throttle caps actual writes.  On a
TTY the line redraws in place; piped to a file it degrades to sparse
newline-terminated lines so logs stay readable.  The planner uses
:meth:`step`, which always writes one line per milestone.
"""

from __future__ import annotations

import sys
import time


class Progress:
    """Throttled progress lines on stderr (or any stream)."""

    def __init__(self, label: str = "serve", stream=None,
                 min_interval: float = 0.5):
        self._label = label
        self._stream = stream
        self._min_interval = min_interval
        self._count = 0
        self._last_emit = time.monotonic()
        self._dirty = False

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    @property
    def events(self) -> int:
        return self._count

    def begin(self, label: str) -> None:
        self._label = label
        self._count = 0
        self._last_emit = time.monotonic()

    def tick(self, simulated_time: float) -> None:
        """Called per simulator event; cheap enough for the hot loop.

        ``min_interval=0`` emits every 64th event unconditionally (the
        deterministic mode the tests use); otherwise a TTY redraws every
        ``min_interval`` seconds and a pipe gets a sparse line every couple
        of seconds at most.
        """

        self._count += 1
        if self._count & 63:
            return
        if self._min_interval > 0:
            now = time.monotonic()
            interval = (self._min_interval if self.stream.isatty()
                        else max(self._min_interval, 2.0))
            if now - self._last_emit < interval:
                return
            self._last_emit = now
        self._emit(f"{self._label}: {self._count} events, "
                   f"t={simulated_time:.2f}s")

    def step(self, message: str) -> None:
        """One always-emitted milestone line (planner progress)."""

        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self._dirty = False
        self.stream.write(f"{self._label}: {message}\n")
        self.stream.flush()

    def _emit(self, text: str) -> None:
        if self.stream.isatty():
            self.stream.write(f"\r\x1b[2K{text}")
            self._dirty = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def finish(self) -> None:
        if self._dirty:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()
            self._dirty = False
