"""Logging setup for the ``repro`` CLI.

Modules log through the stdlib ``logging`` module under the ``repro.*``
namespace (``logging.getLogger(__name__)``); nothing is emitted until
:func:`configure_logging` installs a handler, so library users who never
call it see the stdlib default (warnings and up to stderr, unformatted).
The CLI wires ``repro --log-level debug`` to this — debug level narrates
dispatch and autoscaling decisions.
"""

from __future__ import annotations

import logging

LOG_LEVELS = ("debug", "info", "warning", "error")


def configure_logging(level: str = "warning", stream=None) -> None:
    """Install the root handler at ``level`` (one of :data:`LOG_LEVELS`)."""

    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {', '.join(LOG_LEVELS)}")
    logging.basicConfig(
        level=getattr(logging, level.upper()),
        stream=stream,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S",
        force=True)
