"""Streaming quantile estimation: the P² sketch behind ``LatencySummary``.

The serving reports compute nearest-rank percentiles over the full latency
sample — exact, but O(n) memory, which is the wall the ROADMAP's
million-request item runs into.  :class:`P2Quantile` is Jain & Chlamtac's
P² algorithm: one quantile tracked with five markers in O(1) memory and O(1)
update time, exact until five observations arrive and a piecewise-parabolic
estimate afterwards.  :class:`StreamingLatency` bundles one sketch per
requested percentile plus exact count/mean/max and folds down to the same
:class:`~repro.serve.metrics.LatencySummary` the batch path produces, so a
future ``serve()`` can swap the latency lists for sketches without changing
a single report consumer.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.serve.metrics import (
    DEFAULT_PERCENTILES,
    LatencySummary,
    percentile_label,
)


class P2Quantile:
    """One streaming quantile in O(1) memory (Jain & Chlamtac 1985).

    Five markers track the minimum, the quantile and the points halfway to
    each extreme; marker heights move by a piecewise-parabolic (P²) fit as
    observations arrive.  Updates are deterministic — the same value stream
    always yields the same estimate — which keeps traced runs bit-exact.
    """

    __slots__ = ("fraction", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, fraction: float):
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self._heights: list[float] = []          # marker heights q_i
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * fraction, 1.0 + 4.0 * fraction,
                         3.0 + 2.0 * fraction, 5.0]
        self._rates = [0.0, fraction / 2.0, fraction,
                       (1.0 + fraction) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return (len(self._heights) if len(self._heights) < 5
                else int(self._positions[4]))

    def add(self, value: float) -> None:
        # Hot path: ``serve(summary="streaming")`` calls this several times
        # per completed request, so the marker bookkeeping is unrolled (same
        # arithmetic in the same order as the loop form — estimates stay
        # bit-identical, only the interpreter overhead goes away).
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        if value < heights[1]:
            if value < heights[0]:
                heights[0] = value
            positions[1] += 1.0
            positions[2] += 1.0
            positions[3] += 1.0
            positions[4] += 1.0
        elif value < heights[2]:
            positions[2] += 1.0
            positions[3] += 1.0
            positions[4] += 1.0
        elif value < heights[3]:
            positions[3] += 1.0
            positions[4] += 1.0
        else:
            if value >= heights[4]:
                heights[4] = value
            positions[4] += 1.0
        desired = self._desired
        rates = self._rates
        desired[1] += rates[1]
        desired[2] += rates[2]
        desired[3] += rates[3]
        desired[4] += 1.0
        for index in (1, 2, 3):
            position = positions[index]
            drift = desired[index] - position
            if (drift >= 1.0 and positions[index + 1] - position > 1.0) \
                    or (drift <= -1.0 and positions[index - 1] - position < -1.0):
                sign = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, sign)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:                            # parabola escaped: go linear
                    heights[index] = self._linear(index, sign)
                positions[index] += sign

    def _parabolic(self, index: int, sign: float) -> float:
        q, n = self._heights, self._positions
        return q[index] + sign / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + sign)
            * (q[index + 1] - q[index]) / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - sign)
            * (q[index] - q[index - 1]) / (n[index] - n[index - 1]))

    def _linear(self, index: int, sign: float) -> float:
        q, n = self._heights, self._positions
        step = int(sign)
        return q[index] + sign * (q[index + step] - q[index]) / (n[index + step] - n[index])

    @property
    def value(self) -> float:
        """The current estimate (exact order statistic below five samples)."""

        heights = self._heights
        if not heights:
            return 0.0
        if len(heights) < 5:
            # Nearest-rank on the exact sample, matching metrics.percentile.
            rank = math.ceil(self.fraction * len(heights))
            return heights[max(0, min(len(heights), rank) - 1)]
        return heights[2]


class StreamingLatency:
    """Bounded-memory counterpart of :meth:`LatencySummary.of`.

    Feeds every requested percentile's :class:`P2Quantile` plus exact
    count/mean (Welford-free running sum is fine for latencies) and max, and
    renders the same :class:`LatencySummary` shape the exact path produces —
    estimates instead of order statistics, O(1) memory instead of O(n).
    """

    def __init__(self, percentiles: Sequence[float] = DEFAULT_PERCENTILES):
        fractions = tuple(sorted(set(percentiles) | set(DEFAULT_PERCENTILES)))
        self._sketches = {fraction: P2Quantile(fraction)
                          for fraction in fractions}
        # Bound methods cached once: add() runs per completed request.
        self._adds = tuple(sketch.add for sketch in self._sketches.values())
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for sketch_add in self._adds:
            sketch_add(value)

    def quantile(self, fraction: float) -> float:
        return self._sketches[fraction].value

    def summary(self) -> LatencySummary:
        """Fold into the exact path's report type (same JSON keys)."""

        extras = tuple(
            (percentile_label(fraction), self._sketches[fraction].value)
            for fraction in sorted(self._sketches)
            if fraction not in DEFAULT_PERCENTILES)
        if not self.count:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0,
                                  p99=0.0, max=0.0,
                                  extras=tuple((label, 0.0)
                                               for label, _ in extras))
        return LatencySummary(
            count=self.count, mean=self.total / self.count,
            p50=self._sketches[0.5].value, p95=self._sketches[0.95].value,
            p99=self._sketches[0.99].value, max=self.max, extras=extras)
