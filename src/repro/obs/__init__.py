"""Observability for the serving simulator: tracing, metrics, exporters.

Opt-in and zero-cost when off: build an :class:`Observability` carrying a
:class:`TraceRecorder` (Chrome trace-event spans per request and replica),
a :class:`MetricsCollector` (bounded-memory streaming series + P² latency
sketches) and/or a :class:`Progress` indicator, and pass it as ``obs=`` to
:func:`repro.serve.serve` / :func:`repro.serve.serve_llm`.  Export with
:func:`write_chrome_trace` (Perfetto-loadable) or :func:`prometheus_text`;
analyse saved traces with :func:`summarize_trace`.

This package imports from :mod:`repro.serve.metrics`, never the other way
round — the simulators see ``obs`` only as a duck-typed parameter.
"""

from .export import (
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from .hooks import Observability
from .log import LOG_LEVELS, configure_logging
from .progress import Progress
from .sketch import P2Quantile, StreamingLatency
from .streaming import MetricsCollector
from .summarize import format_summary, load_trace, summarize_trace
from .trace import (
    PHASES,
    PID_FLEET,
    PID_REQUESTS,
    TID_AUTOSCALER,
    TraceRecorder,
)

__all__ = [
    "LOG_LEVELS",
    "MetricsCollector",
    "Observability",
    "P2Quantile",
    "PHASES",
    "PID_FLEET",
    "PID_REQUESTS",
    "Progress",
    "StreamingLatency",
    "TID_AUTOSCALER",
    "TraceRecorder",
    "chrome_trace",
    "chrome_trace_json",
    "configure_logging",
    "format_summary",
    "load_trace",
    "prometheus_text",
    "summarize_trace",
    "write_chrome_trace",
    "write_prometheus",
]
