"""Bounded-memory streaming aggregation of serving metrics.

:class:`MetricsCollector` consumes the same hook stream the trace recorder
does, but keeps only fixed-size state: P² latency sketches
(:class:`~repro.obs.sketch.StreamingLatency`) plus per-replica,
per-``window_seconds`` time series of utilization, queue depth, KV
occupancy and batch size.  Memory is O(replicas x windows) — windows scale
with simulated duration, never with request count — which is the shape the
million-request roadmap item needs.  Export with
:func:`repro.obs.export.prometheus_text`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.serve.metrics import DEFAULT_PERCENTILES

from .sketch import StreamingLatency


@dataclass
class _ReplicaSeries:
    """Per-window aggregates for one replica."""

    busy: list[float] = field(default_factory=list)      # busy seconds in window
    queue_depth: list[int] = field(default_factory=list)  # max depth seen
    kv_used: list[int] = field(default_factory=list)      # max KV tokens held
    batch_sum: list[int] = field(default_factory=list)
    batch_count: list[int] = field(default_factory=list)
    kv_capacity: int = 0
    total_busy: float = 0.0
    total_batches: int = 0
    total_requests: int = 0

    def _grow(self, bucket: int) -> None:
        while len(self.busy) <= bucket:
            self.busy.append(0.0)
            self.queue_depth.append(0)
            self.kv_used.append(0)
            self.batch_sum.append(0)
            self.batch_count.append(0)


class MetricsCollector:
    """Streaming run statistics over fixed-width windows.

    The per-window series use max (queue depth, KV occupancy) or
    proportional attribution (busy seconds are split across every window a
    span overlaps), so a long decode span shows up as utilization in each
    window it covered rather than a spike at its start.
    """

    def __init__(self, window_seconds: float = 1.0,
                 percentiles: Sequence[float] = DEFAULT_PERCENTILES):
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        self.window_seconds = window_seconds
        self.latency = StreamingLatency(percentiles)
        self.queue_wait = StreamingLatency(percentiles)
        self.ttft = StreamingLatency(percentiles)
        self.tpot = StreamingLatency(percentiles)
        self.arrivals: list[int] = []
        self.completions: list[int] = []
        self.replicas: dict[str, _ReplicaSeries] = {}
        self.report = None

    def _bucket(self, ts: float) -> int:
        return max(0, int(ts / self.window_seconds))

    def _series(self, name: str) -> _ReplicaSeries:
        series = self.replicas.get(name)
        if series is None:
            series = self.replicas[name] = _ReplicaSeries()
        return series

    def _grow_run(self, bucket: int) -> None:
        while len(self.arrivals) <= bucket:
            self.arrivals.append(0)
            self.completions.append(0)

    # ------------------------------------------------------------------ hooks

    def on_arrival(self, ts: float) -> None:
        bucket = self._bucket(ts)
        self._grow_run(bucket)
        self.arrivals[bucket] += 1

    def on_completion(self, ts: float, latency: float,
                      queue_wait: float | None = None) -> None:
        bucket = self._bucket(ts)
        self._grow_run(bucket)
        self.completions[bucket] += 1
        self.latency.add(latency)
        if queue_wait is not None:
            self.queue_wait.add(queue_wait)

    def on_ttft(self, value: float) -> None:
        self.ttft.add(value)

    def on_tpot(self, value: float) -> None:
        self.tpot.add(value)

    def on_dispatch(self, name: str, start: float, end: float,
                    batch_size: int, requests: int = 0) -> None:
        """One busy span on a replica (batch, prefill chunk or decode step)."""

        series = self._series(name)
        series.total_busy += end - start
        series.total_batches += 1
        series.total_requests += requests
        first = self._bucket(start)
        last = self._bucket(max(start, end - 1e-12)) if end > start else first
        series._grow(last)
        bucket_bound = series.batch_sum
        bucket_bound[first] += batch_size
        series.batch_count[first] += 1
        width = self.window_seconds
        for bucket in range(first, last + 1):
            lo = max(start, bucket * width)
            hi = min(end, (bucket + 1) * width)
            if hi > lo:
                series.busy[bucket] += hi - lo

    def on_queue_depth(self, name: str, ts: float, depth: int) -> None:
        series = self._series(name)
        bucket = self._bucket(ts)
        series._grow(bucket)
        if depth > series.queue_depth[bucket]:
            series.queue_depth[bucket] = depth

    def on_kv(self, name: str, ts: float, used: int, capacity: int) -> None:
        series = self._series(name)
        series.kv_capacity = capacity
        bucket = self._bucket(ts)
        series._grow(bucket)
        if used > series.kv_used[bucket]:
            series.kv_used[bucket] = used

    def finalize(self, report) -> None:
        """Attach the run's :class:`ServeReport` for run-level export totals."""

        self.report = report

    # ------------------------------------------------------------ inspection

    @property
    def windows(self) -> int:
        lengths = [len(self.arrivals)]
        lengths.extend(len(series.busy) for series in self.replicas.values())
        return max(lengths)

    def utilization(self, name: str) -> list[float]:
        """Per-window busy fraction for one replica."""

        series = self.replicas[name]
        return [busy / self.window_seconds for busy in series.busy]
