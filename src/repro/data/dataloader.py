"""Mini-batch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class DataLoader:
    """Iterate (images, labels) mini-batches, optionally shuffling each epoch."""

    def __init__(self, images: np.ndarray, labels: np.ndarray, batch_size: int,
                 shuffle: bool = True, seed: int = 0, drop_last: bool = False):
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) differ in length")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.images = np.asarray(images)
        self.labels = np.asarray(labels)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.images), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.images))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                break
            yield self.images[index], self.labels[index]
