"""Lightweight image transforms used by the training recipe."""

from __future__ import annotations

import numpy as np


def normalize_images(images: np.ndarray, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Standardise pixel values (broadcast scalar mean/std over all channels)."""

    if std == 0:
        raise ValueError("std must be non-zero")
    return (np.asarray(images, dtype=np.float64) - mean) / std


def horizontal_flip(images: np.ndarray, probability: float = 0.5,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Randomly flip each image left-right with the given probability."""

    rng = rng or np.random.default_rng()
    images = np.asarray(images).copy()
    flips = rng.random(len(images)) < probability
    images[flips] = images[flips][..., ::-1]
    return images


def random_crop_pad(images: np.ndarray, padding: int = 2,
                    rng: np.random.Generator | None = None) -> np.ndarray:
    """Pad reflectively and take a random crop of the original size."""

    if padding <= 0:
        return np.asarray(images)
    rng = rng or np.random.default_rng()
    images = np.asarray(images)
    batch, channels, height, width = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                    mode="reflect")
    output = np.empty_like(images)
    for index in range(batch):
        top = rng.integers(0, 2 * padding + 1)
        left = rng.integers(0, 2 * padding + 1)
        output[index] = padded[index, :, top:top + height, left:left + width]
    return output
