"""Deterministic synthetic image-classification dataset.

Each class is defined by a pair of cues:

* **global cue** — a smooth, image-wide sinusoidal pattern whose orientation
  and frequency depend on the class *group* (several classes share a group,
  so the global cue alone cannot separate them);
* **local cue** — a small bright glyph (a few pixels) whose location and
  checker phase depend on the class *index within the group*.

Gaussian pixel noise and random global intensity jitter are added per sample.
The construction deliberately mirrors the paper's narrative: the low-rank
(linear attention) path can classify the group from global context, but
distinguishing classes inside a group requires attending to local structure —
the role the sparse/"strong" component plays during ViTALiTy training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of the synthetic dataset generator."""

    num_classes: int = 10
    classes_per_group: int = 2
    image_size: int = 32
    channels: int = 3
    noise_std: float = 0.25
    glyph_size: int = 6
    #: Number of distractor glyphs placed at random positions.  Distractors
    #: reuse other classes' glyph textures, so the classifier must attend to
    #: the *class-specific position* rather than pooling glyph features
    #: globally — the property that makes sharp (softmax/sparse) attention
    #: genuinely matter and lets the LOWRANK drop-in degradation reproduce.
    num_distractors: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.num_classes % self.classes_per_group:
            raise ValueError("num_classes must be divisible by classes_per_group")
        if self.glyph_size >= self.image_size // 2:
            raise ValueError("glyph_size must be smaller than half the image size")

    @property
    def num_groups(self) -> int:
        return self.num_classes // self.classes_per_group


class SyntheticImageNet:
    """Generator for the synthetic classification task."""

    def __init__(self, config: SyntheticConfig | None = None):
        self.config = config or SyntheticConfig()
        self._rng = np.random.default_rng(self.config.seed)
        size = self.config.image_size
        coords = np.linspace(0.0, 1.0, size)
        self._grid_y, self._grid_x = np.meshgrid(coords, coords, indexing="ij")

    # -- class structure ------------------------------------------------------------

    def group_of(self, label: int) -> int:
        """The global-cue group a class belongs to."""

        return int(label) // self.config.classes_per_group

    def _global_pattern(self, group: int) -> np.ndarray:
        """Smooth image-wide pattern shared by all classes of a group."""

        angle = np.pi * group / max(self.config.num_groups, 1)
        frequency = 2.0 + group
        phase = 0.5 * group
        direction = np.cos(angle) * self._grid_x + np.sin(angle) * self._grid_y
        pattern = 0.5 + 0.5 * np.sin(2.0 * np.pi * frequency * direction + phase)
        return pattern

    def _glyph_position(self, label: int) -> tuple[int, int]:
        """Deterministic glyph location for the class within its group."""

        within = int(label) % self.config.classes_per_group
        group = self.group_of(label)
        size = self.config.image_size
        margin = self.config.glyph_size + 2
        # Spread glyph positions over the image so that different classes of the
        # same group put their glyph in clearly different places.
        row = (3 + 7 * within + 5 * group) % (size - margin)
        column = (5 + 11 * within + 3 * group) % (size - margin)
        return row, column

    def _local_glyph(self, label: int) -> np.ndarray:
        """Small checkerboard glyph whose phase flips with the in-group index."""

        g = self.config.glyph_size
        within = int(label) % self.config.classes_per_group
        checker = np.indices((g, g)).sum(axis=0) % 2
        if within % 2:
            checker = 1 - checker
        return checker.astype(np.float64)

    # -- sample generation ----------------------------------------------------------

    def _render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        config = self.config
        pattern = self._global_pattern(self.group_of(label))
        image = np.repeat(pattern[None, :, :], config.channels, axis=0)

        # Channel-dependent tint so colour also carries some group information.
        tint = 0.2 * np.arange(config.channels).reshape(-1, 1, 1) / max(config.channels - 1, 1)
        image = image * (0.8 + tint)

        row, column = self._glyph_position(label)
        glyph = self._local_glyph(label)
        g = config.glyph_size
        image[:, row:row + g, column:column + g] = glyph[None, :, :]

        # Distractor glyphs: other classes' textures at random positions.
        for _ in range(config.num_distractors):
            other = int(rng.integers(0, config.num_classes))
            distractor = self._local_glyph(other)
            max_offset = config.image_size - g
            d_row = int(rng.integers(0, max_offset))
            d_col = int(rng.integers(0, max_offset))
            # Never overwrite the class-defining glyph.
            overlaps = abs(d_row - row) < g and abs(d_col - column) < g
            if overlaps:
                continue
            image[:, d_row:d_row + g, d_col:d_col + g] = distractor[None, :, :]

        jitter = rng.uniform(0.9, 1.1)
        noise = rng.normal(0.0, config.noise_std, size=image.shape)
        noisy = np.clip(image * jitter + noise, 0.0, 1.5)
        return noisy

    def generate(self, num_samples: int, seed: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``num_samples`` (images, labels) with a balanced label mix."""

        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        labels = np.arange(num_samples) % self.config.num_classes
        rng.shuffle(labels)
        images = np.stack([self._render(int(label), rng) for label in labels])
        return images.astype(np.float64), labels.astype(np.int64)

    def train_test_split(self, train_samples: int, test_samples: int,
                         seed: int | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Convenience wrapper returning (train_x, train_y, test_x, test_y)."""

        base_seed = self.config.seed if seed is None else seed
        train_x, train_y = self.generate(train_samples, seed=base_seed)
        test_x, test_y = self.generate(test_samples, seed=base_seed + 1)
        return train_x, train_y, test_x, test_y
