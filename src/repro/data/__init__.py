"""Synthetic data substrate standing in for ImageNet.

The paper fine-tunes on ImageNet-1k, which is unavailable offline and far too
large for a numpy training loop.  ``SyntheticImageNet`` generates a
deterministic, small image-classification task whose classes carry both a
*global* cue (low-frequency structure spanning the whole image, which linear
attention's global context captures) and a *local* cue (a small high-contrast
glyph whose position/texture distinguishes otherwise identical classes, which
requires the local feature extraction that pure linear attention lacks).
This makes the qualitative accuracy ordering of the paper reproducible:
LOWRANK-only models underfit the local cue, while LOWRANK+SPARSE training
recovers it.
"""

from repro.data.synthetic import SyntheticImageNet, SyntheticConfig
from repro.data.dataloader import DataLoader
from repro.data.transforms import normalize_images, random_crop_pad, horizontal_flip

__all__ = [
    "SyntheticImageNet",
    "SyntheticConfig",
    "DataLoader",
    "normalize_images",
    "random_crop_pad",
    "horizontal_flip",
]
