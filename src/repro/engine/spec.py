"""Declarative, hashable description of one simulation run.

A :class:`RunSpec` captures everything that determines a simulation's outcome
— model, target, attention formulation, batch size, token-count override,
dataflow, pipelining, linear-layer inclusion, and peak-throughput scaling —
so identical runs can be recognised and served from the result cache, and
cross-product sweeps can be expanded mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.workloads import ModelWorkload, get_workload, scaled_to_tokens

#: Dataflows accepted by the ViTALiTy targets (values of
#: :class:`repro.hardware.Dataflow`).
DATAFLOWS = ("down_forward", "g_stationary")

#: Attention formulations accepted by the platform targets.
ATTENTION_MODES = ("vanilla", "taylor")


@dataclass(frozen=True)
class RunSpec:
    """One simulation request.

    Attributes:
        model: workload name — a registered name (``"deit-tiny"``, see
            :func:`repro.workloads.list_workloads`) or a *configured* name
            spelled with the workload grammar
            (``"deit-tiny[tokens=1024]"``,
            ``"decoder[tokens=1,kv_tokens=2048,phase=decode]"``; see
            :func:`repro.workloads.list_families`).
        target: registry name of the simulation target, e.g. ``"vitality"``
            or ``"edge_gpu"`` (see :func:`repro.engine.list_targets`).
        attention: attention formulation for targets that support more than
            one (``"vanilla"`` or ``"taylor"`` on the platform models);
            ``None`` selects the target's native formulation.
        batch_size: images processed back to back; latency and energy scale
            linearly (the simulators model single-image residency).
        tokens: deprecated alias for the ``tokens=`` workload knob — the
            override lowers onto the grammar, so ``("deit-tiny", tokens=512)``
            resolves (and caches) exactly as ``"deit-tiny[tokens=512]"``.
            Prefer spelling the knob in ``model``.
        dataflow: accumulation dataflow override for the ViTALiTy targets
            (``"down_forward"`` or ``"g_stationary"``).
        pipelined: intra-layer pipelining override for the ViTALiTy targets.
        include_linear: include the projection/MLP GEMMs (set ``False`` for
            attention-only comparisons such as the SALO study).
        scale_to_peak: scale the target's PE array up to this peak MAC/s
            before simulating, if the target supports scaling and its native
            peak is lower (the paper's platform-comparison methodology).
    """

    model: str
    target: str = "vitality"
    attention: str | None = None
    batch_size: int = 1
    tokens: int | None = None
    dataflow: str | None = None
    pipelined: bool | None = None
    include_linear: bool = True
    scale_to_peak: float | None = None

    def __post_init__(self):
        if not self.model:
            raise ValueError("RunSpec.model must be a non-empty workload name")
        if not self.target:
            raise ValueError("RunSpec.target must be a non-empty target name")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.tokens is not None and self.tokens < 1:
            raise ValueError(f"tokens override must be >= 1, got {self.tokens}")
        if self.attention is not None and self.attention not in ATTENTION_MODES:
            raise ValueError(f"attention must be one of {ATTENTION_MODES}, "
                             f"got {self.attention!r}")
        if self.dataflow is not None and self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}, got {self.dataflow!r}")
        if self.scale_to_peak is not None and self.scale_to_peak <= 0:
            raise ValueError("scale_to_peak must be positive")

    def workload(self) -> ModelWorkload:
        """Resolve the configured workload this spec runs on.

        The deprecated ``tokens`` override is applied as the ``tokens=`` knob
        of the model's family, so every spelling of one geometry resolves to
        the same cached :class:`ModelWorkload`.
        """

        return get_workload(self.model, tokens=self.tokens)

    def to_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def scale_workload_tokens(workload: ModelWorkload, tokens: int) -> ModelWorkload:
    """Deprecated alias of :func:`repro.workloads.scaled_to_tokens`.

    Multi-stage models (MobileViT, LeViT) keep their relative stage geometry;
    each layer's token counts scale by the same *floored* ratio (clamped at
    1), matching the ``tokens=`` workload knob exactly.
    """

    return scaled_to_tokens(workload, tokens)
