"""Declarative, hashable description of one simulation run.

A :class:`RunSpec` captures everything that determines a simulation's outcome
— model, target, attention formulation, batch size, token-count override,
dataflow, pipelining, linear-layer inclusion, and peak-throughput scaling —
so identical runs can be recognised and served from the result cache, and
cross-product sweeps can be expanded mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.workloads import ModelWorkload, get_workload

#: Dataflows accepted by the ViTALiTy targets (values of
#: :class:`repro.hardware.Dataflow`).
DATAFLOWS = ("down_forward", "g_stationary")

#: Attention formulations accepted by the platform targets.
ATTENTION_MODES = ("vanilla", "taylor")


@dataclass(frozen=True)
class RunSpec:
    """One simulation request.

    Attributes:
        model: workload name, e.g. ``"deit-tiny"`` (see
            :func:`repro.workloads.list_workloads`).
        target: registry name of the simulation target, e.g. ``"vitality"``
            or ``"edge_gpu"`` (see :func:`repro.engine.list_targets`).
        attention: attention formulation for targets that support more than
            one (``"vanilla"`` or ``"taylor"`` on the platform models);
            ``None`` selects the target's native formulation.
        batch_size: images processed back to back; latency and energy scale
            linearly (the simulators model single-image residency).
        tokens: override the workload's dominant token count; every layer's
            token dimensions are rescaled proportionally.
        dataflow: accumulation dataflow override for the ViTALiTy targets
            (``"down_forward"`` or ``"g_stationary"``).
        pipelined: intra-layer pipelining override for the ViTALiTy targets.
        include_linear: include the projection/MLP GEMMs (set ``False`` for
            attention-only comparisons such as the SALO study).
        scale_to_peak: scale the target's PE array up to this peak MAC/s
            before simulating, if the target supports scaling and its native
            peak is lower (the paper's platform-comparison methodology).
    """

    model: str
    target: str = "vitality"
    attention: str | None = None
    batch_size: int = 1
    tokens: int | None = None
    dataflow: str | None = None
    pipelined: bool | None = None
    include_linear: bool = True
    scale_to_peak: float | None = None

    def __post_init__(self):
        if not self.model:
            raise ValueError("RunSpec.model must be a non-empty workload name")
        if not self.target:
            raise ValueError("RunSpec.target must be a non-empty target name")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.tokens is not None and self.tokens < 1:
            raise ValueError(f"tokens override must be >= 1, got {self.tokens}")
        if self.attention is not None and self.attention not in ATTENTION_MODES:
            raise ValueError(f"attention must be one of {ATTENTION_MODES}, "
                             f"got {self.attention!r}")
        if self.dataflow is not None and self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}, got {self.dataflow!r}")
        if self.scale_to_peak is not None and self.scale_to_peak <= 0:
            raise ValueError("scale_to_peak must be positive")

    def workload(self) -> ModelWorkload:
        """Resolve the (possibly token-rescaled) workload this spec runs on."""

        workload = get_workload(self.model)
        if self.tokens is None:
            return workload
        return scale_workload_tokens(workload, self.tokens)

    def to_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def scale_workload_tokens(workload: ModelWorkload, tokens: int) -> ModelWorkload:
    """Rescale every layer's token dimensions so the dominant attention layer
    processes ``tokens`` query tokens.

    Multi-stage models (MobileViT, LeViT) keep their relative stage geometry;
    each layer's token counts are scaled by the same ratio (floored at 1).
    """

    if tokens < 1:
        raise ValueError(f"tokens must be >= 1, got {tokens}")
    base = max(spec.tokens for spec in workload.attention_layers)
    if tokens == base:
        return workload
    ratio = tokens / base

    def _scaled(count: int) -> int:
        return max(1, round(count * ratio))

    attention = tuple(
        replace(spec, tokens=_scaled(spec.tokens), kv_tokens=_scaled(spec.kv_tokens))
        for spec in workload.attention_layers
    )
    linear = tuple(
        replace(spec, tokens=_scaled(spec.tokens)) for spec in workload.linear_layers
    )
    return replace(workload, name=f"{workload.name}@{tokens}tok",
                   attention_layers=attention, linear_layers=linear)
