"""Uniform result schema returned by every simulation target.

Whatever hardware model produced them — the cycle-level ViTALiTy/Sanger/SALO
accelerators or the analytic platform models — results are normalised into a
:class:`RunResult`: latencies and energies in SI units, an energy breakdown,
and per-layer step records.  This is what makes results comparable across
targets, serialisable to JSON, and safe to memoise (all fields are immutable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.hardware.memsim.roofline import RooflineRecord


@dataclass(frozen=True)
class StepRecord:
    """One computational step of a layer on one hardware chunk."""

    name: str
    chunk: str
    latency_seconds: float
    energy_joules: float

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "chunk": self.chunk,
            "latency_seconds": self.latency_seconds,
            "energy_joules": self.energy_joules,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "StepRecord":
        return cls(name=payload["name"], chunk=payload["chunk"],
                   latency_seconds=payload["latency_seconds"],
                   energy_joules=payload["energy_joules"])


@dataclass(frozen=True)
class LayerRecord:
    """One simulated layer: its latency/energy per occurrence and repeat count."""

    name: str
    kind: str                          # "attention" | "linear" | "profile"
    repeats: int
    latency_seconds: float             # one occurrence
    energy_joules: float               # one occurrence
    steps: tuple[StepRecord, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "repeats": self.repeats,
            "latency_seconds": self.latency_seconds,
            "energy_joules": self.energy_joules,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LayerRecord":
        return cls(name=payload["name"], kind=payload["kind"],
                   repeats=payload["repeats"],
                   latency_seconds=payload["latency_seconds"],
                   energy_joules=payload["energy_joules"],
                   steps=tuple(StepRecord.from_dict(step)
                               for step in payload.get("steps", ())))


@dataclass(frozen=True)
class RunResult:
    """Normalised outcome of simulating one :class:`~repro.engine.RunSpec`.

    Attributes:
        model: workload name the run was executed on.
        target: registry name of the target that produced the result.
        attention_latency: seconds spent in the attention layers (per batch).
        linear_latency: seconds spent in projection/MLP GEMMs (zero when the
            run was attention-only or the target models no dense layers).
        attention_energy / linear_energy: joules, split the same way.
        end_to_end_latency / end_to_end_energy: whole-run totals.  Stored
            rather than derived so each target controls exactly how its
            components combine (bit-identical to the underlying model).
        energy_breakdown: target-specific energy categories in joules (the
            ViTALiTy targets report the Table V split ``data_access`` /
            ``other_processors`` / ``systolic_array`` of the attention module).
        layers: per-layer records with their step-level latency/energy.
        config: canonical knob string of the design point the producing
            target was configured with (``"pe=32x32,freq=1ghz"``); empty for
            the reference (Table III) design points.
        roofline: per-layer memory-system classification (compute-bound vs
            memory-bound, stall cycles, arithmetic intensity) from the
            tile-level memory simulator.  Empty — and absent from the JSON
            shape — unless the design point set a ``dram_gbps``/``tile_*``
            knob, so default results are unchanged.
    """

    model: str
    target: str
    attention_latency: float
    linear_latency: float
    attention_energy: float
    linear_energy: float
    end_to_end_latency: float
    end_to_end_energy: float
    energy_breakdown: tuple[tuple[str, float], ...] = field(default_factory=tuple)
    layers: tuple[LayerRecord, ...] = field(default_factory=tuple)
    config: str = ""
    roofline: tuple[RooflineRecord, ...] = field(default_factory=tuple)

    def breakdown(self) -> dict[str, float]:
        """The energy breakdown as a plain dictionary."""

        return dict(self.energy_breakdown)

    def to_dict(self, include_layers: bool = False) -> dict[str, object]:
        payload: dict[str, object] = {
            "model": self.model,
            "target": self.target,
            "attention_latency": self.attention_latency,
            "linear_latency": self.linear_latency,
            "end_to_end_latency": self.end_to_end_latency,
            "attention_energy": self.attention_energy,
            "linear_energy": self.linear_energy,
            "end_to_end_energy": self.end_to_end_energy,
            "energy_breakdown": self.breakdown(),
            "config": self.config,
        }
        if include_layers:
            payload["layers"] = [layer.to_dict() for layer in self.layers]
        if self.roofline:
            payload["roofline"] = [record.to_dict() for record in self.roofline]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (the disk-cache path)."""

        return cls(
            model=payload["model"],
            target=payload["target"],
            attention_latency=payload["attention_latency"],
            linear_latency=payload["linear_latency"],
            attention_energy=payload["attention_energy"],
            linear_energy=payload["linear_energy"],
            end_to_end_latency=payload["end_to_end_latency"],
            end_to_end_energy=payload["end_to_end_energy"],
            energy_breakdown=tuple((key, value) for key, value
                                   in payload.get("energy_breakdown", {}).items()),
            layers=tuple(LayerRecord.from_dict(layer)
                         for layer in payload.get("layers", ())),
            config=payload.get("config", ""),
            roofline=tuple(RooflineRecord.from_dict(record)
                           for record in payload.get("roofline", ())),
        )

    def to_json(self, include_layers: bool = False, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(include_layers=include_layers), indent=indent)
