"""Uniform result schema returned by every simulation target.

Whatever hardware model produced them — the cycle-level ViTALiTy/Sanger/SALO
accelerators or the analytic platform models — results are normalised into a
:class:`RunResult`: latencies and energies in SI units, an energy breakdown,
and per-layer step records.  This is what makes results comparable across
targets, serialisable to JSON, and safe to memoise (all fields are immutable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StepRecord:
    """One computational step of a layer on one hardware chunk."""

    name: str
    chunk: str
    latency_seconds: float
    energy_joules: float

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "chunk": self.chunk,
            "latency_seconds": self.latency_seconds,
            "energy_joules": self.energy_joules,
        }


@dataclass(frozen=True)
class LayerRecord:
    """One simulated layer: its latency/energy per occurrence and repeat count."""

    name: str
    kind: str                          # "attention" | "linear" | "profile"
    repeats: int
    latency_seconds: float             # one occurrence
    energy_joules: float               # one occurrence
    steps: tuple[StepRecord, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "repeats": self.repeats,
            "latency_seconds": self.latency_seconds,
            "energy_joules": self.energy_joules,
            "steps": [step.to_dict() for step in self.steps],
        }


@dataclass(frozen=True)
class RunResult:
    """Normalised outcome of simulating one :class:`~repro.engine.RunSpec`.

    Attributes:
        model: workload name the run was executed on.
        target: registry name of the target that produced the result.
        attention_latency: seconds spent in the attention layers (per batch).
        linear_latency: seconds spent in projection/MLP GEMMs (zero when the
            run was attention-only or the target models no dense layers).
        attention_energy / linear_energy: joules, split the same way.
        end_to_end_latency / end_to_end_energy: whole-run totals.  Stored
            rather than derived so each target controls exactly how its
            components combine (bit-identical to the underlying model).
        energy_breakdown: target-specific energy categories in joules (the
            ViTALiTy targets report the Table V split ``data_access`` /
            ``other_processors`` / ``systolic_array`` of the attention module).
        layers: per-layer records with their step-level latency/energy.
    """

    model: str
    target: str
    attention_latency: float
    linear_latency: float
    attention_energy: float
    linear_energy: float
    end_to_end_latency: float
    end_to_end_energy: float
    energy_breakdown: tuple[tuple[str, float], ...] = field(default_factory=tuple)
    layers: tuple[LayerRecord, ...] = field(default_factory=tuple)

    def breakdown(self) -> dict[str, float]:
        """The energy breakdown as a plain dictionary."""

        return dict(self.energy_breakdown)

    def to_dict(self, include_layers: bool = False) -> dict[str, object]:
        payload: dict[str, object] = {
            "model": self.model,
            "target": self.target,
            "attention_latency": self.attention_latency,
            "linear_latency": self.linear_latency,
            "end_to_end_latency": self.end_to_end_latency,
            "attention_energy": self.attention_energy,
            "linear_energy": self.linear_energy,
            "end_to_end_energy": self.end_to_end_energy,
            "energy_breakdown": self.breakdown(),
        }
        if include_layers:
            payload["layers"] = [layer.to_dict() for layer in self.layers]
        return payload

    def to_json(self, include_layers: bool = False, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(include_layers=include_layers), indent=indent)
