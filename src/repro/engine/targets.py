"""Simulation targets: one uniform ``Target`` protocol over every hardware model.

A target adapts one of the repo's hardware models — the cycle-level ViTALiTy,
Sanger and SALO accelerators or the analytic CPU/GPU platform models — to a
single interface::

    class Target(Protocol):
        name: str
        peak_macs_per_second: float
        def simulate(self, spec: RunSpec) -> RunResult: ...
        def scaled_to_peak(self, peak) -> "Target"      # optional capability

Targets are looked up by name in a registry; the default registry covers the
paper's full evaluation matrix (``vitality`` and its dataflow/pipelining
variants, ``sanger``, ``salo``, and the ``cpu`` / ``edge_gpu`` / ``gpu``
platforms).  New hardware backends plug in via :func:`register_target`.

Beyond the registered names, :func:`get_target` understands *configured*
names — ``vitality[pe=32x32,freq=1ghz]`` — which parse the bracketed knob
string with the base target's family schema
(:mod:`repro.hardware.core.knobs`) and build a design-point instance on
demand.  Configured names are canonicalised (knobs sorted, values
normalised, reference values dropped) and the resulting instances cached, so
every spelling of one physical design point resolves to one target object —
and therefore one set of result-cache entries.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Protocol, runtime_checkable

from repro.engine.results import LayerRecord, RunResult, StepRecord
from repro.engine.spec import RunSpec
from repro.hardware import (
    Dataflow,
    HardwareConfig,
    MemSimConfig,
    MemSimViTALiTyAccelerator,
    ModelResult,
    PLATFORM_SCHEMA,
    SALO_SCHEMA,
    SALOAccelerator,
    SANGER_SCHEMA,
    SangerAccelerator,
    VITALITY_SCHEMA,
    ViTALiTyAccelerator,
    build_platform,
    build_salo_configs,
    build_sanger_config,
    build_vitality_config,
    get_platform,
)
from repro.hardware.memsim.roofline import RooflineRecord
from repro.workloads import ModelWorkload


class UnknownTargetError(KeyError):
    """Raised when a target name is not in the registry."""


@runtime_checkable
class Target(Protocol):
    """What every simulation backend must provide."""

    name: str

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput of the target's compute fabric."""
        ...

    def simulate(self, spec: RunSpec) -> RunResult:
        """Execute one run and return the uniform result schema."""
        ...


def split_configured_names(text: str) -> tuple[str, ...]:
    """Split a comma-separated name list, ignoring commas inside ``[...]``.

    ``"vitality[pe=32x32,freq=1ghz],sanger"`` has a knob-separating comma a
    naive ``text.split(",")`` would cut at; this is the splitter every
    name-list consumer (the CLI, fleet specs) shares.
    """

    parts: list[str] = []
    current: list[str] = []
    depth = 0
    for character in text:
        if character == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        if character == "[":
            depth += 1
        elif character == "]":
            depth = max(0, depth - 1)
        current.append(character)
    parts.append("".join(current))
    return tuple(part.strip() for part in parts if part.strip())


def _check_attention_mode(spec: RunSpec, native: str, target: str) -> None:
    if spec.attention is not None and spec.attention != native:
        raise ValueError(
            f"target {target!r} only computes its native {native!r} attention; "
            f"got attention={spec.attention!r}")


def _reject_unsupported(spec: RunSpec, target: str, *fields: str) -> None:
    """Fail loudly on RunSpec options this target cannot honor.

    Silently ignoring an option would return unmodified numbers with exit 0
    (and pollute the cache with duplicate entries for the same physical run).
    """

    for name in fields:
        if getattr(spec, name) is not None:
            raise ValueError(f"target {target!r} does not support {name!r} "
                             f"(got {getattr(spec, name)!r})")


def _batch_scaled(spec: RunSpec, result: ModelResult,
                  breakdown: dict[str, float], layers: tuple[LayerRecord, ...],
                  target: "Target",
                  roofline: tuple[RooflineRecord, ...] = ()) -> RunResult:
    """Normalise a cycle-level :class:`ModelResult` into a :class:`RunResult`."""

    batch = spec.batch_size
    return RunResult(
        model=result.model,
        target=target.name,
        attention_latency=result.attention_latency * batch,
        linear_latency=result.linear_latency * batch,
        attention_energy=result.attention_energy * batch,
        linear_energy=result.linear_energy * batch,
        end_to_end_latency=result.end_to_end_latency * batch,
        end_to_end_energy=result.end_to_end_energy * batch,
        energy_breakdown=tuple((key, value * batch) for key, value in breakdown.items()),
        layers=layers,
        config=getattr(target, "config_text", ""),
        roofline=roofline,
    )


def _layer_records(result: ModelResult, workload: ModelWorkload,
                   include_linear: bool) -> tuple[LayerRecord, ...]:
    """Attach repeat counts (from the workload specs) to the simulated layers."""

    kinds = [("attention", spec.repeats) for spec in workload.attention_layers]
    if include_linear:
        kinds += [("linear", spec.repeats) for spec in workload.linear_layers]
    records = []
    for layer, (kind, repeats) in zip(result.layers, kinds):
        frequency = layer.frequency_hz
        steps = tuple(
            StepRecord(step.name, step.chunk, step.cycles / frequency, step.energy_joules)
            for step in layer.steps
        )
        records.append(LayerRecord(name=layer.name, kind=kind, repeats=repeats,
                                   latency_seconds=layer.latency_seconds,
                                   energy_joules=layer.energy_joules, steps=steps))
    return tuple(records)


def _table5_breakdown(layers: tuple[LayerRecord, ...]) -> dict[str, float]:
    """Table V energy split of the attention module, from the step records.

    Mirrors ``ViTALiTyAccelerator.attention_energy_breakdown`` (same
    per-layer accumulation order, so the totals are bit-identical) without
    re-simulating the attention layers.
    """

    data_access = other_processors = systolic_array = 0.0
    for layer in layers:
        if layer.kind != "attention":
            continue
        layer_data = layer_other = layer_systolic = 0.0
        for step in layer.steps:
            if step.chunk in ("systolic", "sa_diag"):
                layer_systolic += step.energy_joules
            elif step.chunk == "memory":
                layer_data += step.energy_joules
            else:
                layer_other += step.energy_joules
        data_access += layer_data * layer.repeats
        other_processors += layer_other * layer.repeats
        systolic_array += layer_systolic * layer.repeats
    return {
        "data_access": data_access,
        "other_processors": other_processors,
        "systolic_array": systolic_array,
    }


class VitalityTarget:
    """The ViTALiTy accelerator (Section IV), with optional variant defaults.

    ``dataflow`` / ``pipelined`` set the variant's defaults; a
    :class:`RunSpec` may still override either per run.  ``design`` selects a
    non-reference design point (see :data:`~repro.hardware.VITALITY_SCHEMA`
    for the knobs).
    """

    knob_schema = VITALITY_SCHEMA

    def __init__(self, name: str = "vitality",
                 dataflow: Dataflow = Dataflow.DOWN_FORWARD,
                 pipelined: bool = True,
                 default_peak: float | None = None,
                 design: HardwareConfig | None = None):
        self.name = name
        self.default_dataflow = dataflow
        self.default_pipelined = pipelined
        self.default_peak = default_peak
        self.design = design
        self.config_text = self.knob_schema.render(design) if design is not None else ""
        self._config = build_vitality_config(design)
        # The tile-level memory simulator activates only when the design
        # point sets a bandwidth/tile knob (None otherwise -> analytic path,
        # bit-identical to the seed models).  Explicit tile sizes that
        # cannot fit the double-buffered buffers fail here, at construction.
        self._memsim = MemSimConfig.from_design(
            design, self._config.memory.sram_kb,
            self._config.sa_general.rows, self._config.sa_general.columns)

    def configured(self, name: str, design: HardwareConfig) -> "VitalityTarget":
        """This variant at another design point (the ``name[...]`` factory)."""

        return VitalityTarget(name, dataflow=self.default_dataflow,
                              pipelined=self.default_pipelined, design=design)

    def _accelerator(self, spec: RunSpec) -> ViTALiTyAccelerator:
        dataflow = (Dataflow(spec.dataflow) if spec.dataflow is not None
                    else self.default_dataflow)
        pipelined = (spec.pipelined if spec.pipelined is not None
                     else self.default_pipelined)
        if self._memsim is not None:
            accelerator = MemSimViTALiTyAccelerator(
                self._config, self._memsim, dataflow=dataflow, pipelined=pipelined)
        else:
            accelerator = ViTALiTyAccelerator(self._config, dataflow=dataflow,
                                              pipelined=pipelined)
        peak = spec.scale_to_peak if spec.scale_to_peak is not None else self.default_peak
        if peak is not None and peak > accelerator.peak_macs_per_second:
            accelerator = accelerator.scaled_to_peak(peak)
        return accelerator

    @property
    def peak_macs_per_second(self) -> float:
        pes = self._config.sa_general.lanes + self._config.sa_diag.lanes
        return pes * self._config.frequency_hz

    @property
    def area_mm2(self) -> float:
        """Silicon area of this design point (the DSE Pareto axis)."""

        return self._config.total_area_mm2

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """Drop a ``scale_to_peak`` at or below the native peak (a no-op).

        Not applied on pre-scaled variants (``default_peak`` set), where a
        ``None`` scale falls back to the variant's own peak instead.
        """

        if (self.default_peak is None
                and spec.scale_to_peak is not None
                and spec.scale_to_peak <= self.peak_macs_per_second):
            spec = replace(spec, scale_to_peak=None)
        return spec

    def scaled_to_peak(self, peak_macs_per_second: float) -> "VitalityTarget":
        """A variant whose runs scale the PE array up to the given peak."""

        return VitalityTarget(f"{self.name}@{peak_macs_per_second:.3g}macs",
                              dataflow=self.default_dataflow,
                              pipelined=self.default_pipelined,
                              default_peak=peak_macs_per_second,
                              design=self.design)

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "taylor", self.name)
        accelerator = self._accelerator(spec)
        workload = spec.workload()
        result = accelerator.run_model(workload, include_linear=spec.include_linear)
        layers = _layer_records(result, workload, spec.include_linear)
        breakdown = _table5_breakdown(layers)
        roofline: tuple[RooflineRecord, ...] = ()
        if self._memsim is not None:
            # The accelerator's records align with the simulated layers;
            # attach the repeat counts the layer records carry.
            roofline = tuple(
                replace(record, repeats=layer.repeats)
                for record, layer in zip(accelerator.rooflines, layers))
        return _batch_scaled(spec, result, breakdown, layers, self,
                             roofline=roofline)


class SangerTarget:
    """The Sanger sparse-attention accelerator baseline (MICRO 2021)."""

    knob_schema = SANGER_SCHEMA

    def __init__(self, name: str = "sanger",
                 design: HardwareConfig | None = None):
        self.name = name
        self.design = design
        self.config_text = self.knob_schema.render(design) if design is not None else ""
        self._config = build_sanger_config(design)

    def configured(self, name: str, design: HardwareConfig) -> "SangerTarget":
        return SangerTarget(name, design=design)

    @property
    def peak_macs_per_second(self) -> float:
        return self._config.re_pe_array.lanes * self._config.frequency_hz

    @property
    def area_mm2(self) -> float:
        return self._config.total_area_mm2

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "vanilla", self.name)
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        accelerator = SangerAccelerator(self._config)
        workload = spec.workload()
        result = accelerator.run_model(workload, include_linear=spec.include_linear)
        breakdown = {"attention": result.attention_energy, "linear": result.linear_energy}
        layers = _layer_records(result, workload, spec.include_linear)
        return _batch_scaled(spec, result, breakdown, layers, self)


class SALOTarget:
    """The SALO window-attention accelerator under the ViTALiTy budget.

    SALO models only the attention module, so ``linear_latency`` is always
    zero regardless of ``include_linear``.
    """

    knob_schema = SALO_SCHEMA

    def __init__(self, name: str = "salo",
                 design: HardwareConfig | None = None):
        self.name = name
        self.design = design
        self.config_text = self.knob_schema.render(design) if design is not None else ""
        self._budget, self._pattern = build_salo_configs(design)

    def configured(self, name: str, design: HardwareConfig) -> "SALOTarget":
        return SALOTarget(name, design=design)

    @property
    def peak_macs_per_second(self) -> float:
        return self._budget.sa_general.lanes * self._budget.frequency_hz

    @property
    def area_mm2(self) -> float:
        return self._budget.total_area_mm2

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """``include_linear`` is a no-op here (SALO models attention only)."""

        if not spec.include_linear:
            spec = replace(spec, include_linear=True)
        return spec

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "vanilla", self.name)
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        accelerator = SALOAccelerator(self._budget, self._pattern)
        workload = spec.workload()
        result = accelerator.run_model(workload)
        breakdown = {"attention": result.attention_energy, "linear": 0.0}
        layers = _layer_records(result, workload, include_linear=False)
        return _batch_scaled(spec, result, breakdown, layers, self)


class PlatformTarget:
    """An analytic general-purpose platform (CPU / GPU / edge GPU / Pixel 3).

    Platforms evaluate either attention formulation; the default is the
    ``vanilla`` softmax attention (the paper's baseline configuration).
    """

    knob_schema = PLATFORM_SCHEMA

    def __init__(self, name: str, base: str | None = None,
                 design: HardwareConfig | None = None):
        self.name = name
        self.design = design
        self.config_text = self.knob_schema.render(design) if design is not None else ""
        self.platform = build_platform(get_platform(base or name), design)

    def configured(self, name: str, design: HardwareConfig) -> "PlatformTarget":
        return PlatformTarget(name, base=self.platform.name, design=design)

    @property
    def peak_macs_per_second(self) -> float:
        return self.platform.peak_macs_per_second

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """An unset attention mode means the platform default, ``vanilla``."""

        if spec.attention is None:
            spec = replace(spec, attention="vanilla")
        return spec

    def simulate(self, spec: RunSpec) -> RunResult:
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        taylor = (spec.attention or "vanilla") == "taylor"
        workload = spec.workload()
        attention_latency = self.platform.attention_latency(workload, taylor=taylor)
        linear_latency = self.platform.linear_latency(workload) if spec.include_linear else 0.0
        if spec.include_linear:
            end_to_end_latency = self.platform.end_to_end_latency(workload, taylor=taylor)
            end_to_end_energy = self.platform.end_to_end_energy(workload, taylor=taylor)
        else:
            end_to_end_latency = attention_latency
            end_to_end_energy = self.platform.attention_energy(workload, taylor=taylor)
        power = self.platform.average_power_watts
        profile = (self.platform.taylor_attention_profile(workload) if taylor
                   else self.platform.vanilla_attention_profile(workload))
        steps = tuple(
            StepRecord(name, self.name, latency, latency * power)
            for name, latency in profile.items()
        )
        layers = (LayerRecord(
            name=f"{'taylor' if taylor else 'vanilla'}_attention_profile",
            kind="profile", repeats=1, latency_seconds=attention_latency,
            energy_joules=attention_latency * power, steps=steps),)
        batch = spec.batch_size
        return RunResult(
            model=workload.name,
            target=self.name,
            attention_latency=attention_latency * batch,
            linear_latency=linear_latency * batch,
            attention_energy=attention_latency * power * batch,
            linear_energy=linear_latency * power * batch,
            end_to_end_latency=end_to_end_latency * batch,
            end_to_end_energy=end_to_end_energy * batch,
            energy_breakdown=(("attention", attention_latency * power * batch),
                              ("linear", linear_latency * power * batch)),
            layers=layers,
            config=self.config_text,
        )


# ---------------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------------

_TARGETS: dict[str, Target] = {}
#: Design-point instances materialised from ``name[knob=...]`` lookups,
#: keyed by their canonical configured name.
_CONFIGURED: dict[str, Target] = {}


def register_target(target: Target, replace: bool = False) -> Target:
    """Register a target under its ``name`` (``replace=True`` to override).

    Replacing a target evicts its memoised results from the default cache —
    and drops every configured instance derived from it — so the new backend
    cannot be shadowed by its predecessor's numbers.  (Privately held
    :class:`~repro.engine.ResultCache` instances must be invalidated by
    their owners.)
    """

    if target.name in _TARGETS:
        if not replace:
            raise ValueError(f"target {target.name!r} is already registered")
        from repro.engine.cache import DEFAULT_CACHE
        DEFAULT_CACHE.invalidate_target(target.name)
        derived = [name for name in _CONFIGURED
                   if name.partition("[")[0] == target.name]
        for name in derived:
            del _CONFIGURED[name]
            DEFAULT_CACHE.invalidate_target(name)
    _TARGETS[target.name] = target
    return target


def _configured_target(name: str) -> Target:
    """Resolve ``base[knob=value,...]`` to a cached design-point instance."""

    base_name, _, bracketed = name.partition("[")
    knob_text = bracketed[:-1]                      # drop the trailing "]"
    try:
        base = _TARGETS[base_name]
    except KeyError:
        raise UnknownTargetError(
            f"unknown target {base_name!r} in configured name {name!r}; "
            f"available: {', '.join(list_targets())}") from None
    schema = getattr(base, "knob_schema", None)
    factory = getattr(base, "configured", None)
    if schema is None or factory is None:
        raise UnknownTargetError(
            f"target {base_name!r} does not accept [knob=value,...] configuration")
    design = schema.parse(knob_text)                # raises KnobError on bad knobs
    if design.is_reference:
        return base                                 # every knob at its Table III value
    canonical = f"{base_name}[{schema.render(design)}]"
    target = _CONFIGURED.get(canonical)
    if target is None:
        target = factory(canonical, design)
        _CONFIGURED[canonical] = target
    return target


def get_target(name: str) -> Target:
    """Look up a target by registered or configured (``name[knob=...]``) name."""

    try:
        return _TARGETS[name]
    except KeyError:
        pass
    if "[" in name and name.endswith("]"):
        return _configured_target(name)
    raise UnknownTargetError(
        f"unknown target {name!r}; available: {', '.join(list_targets())} "
        f"(design points configure as 'name[knob=value,...]', e.g. "
        f"'vitality[pe=32x32,freq=1ghz]')")


def list_targets() -> list[str]:
    """Names of every registered target, in registration order."""

    return list(_TARGETS)


def target_area_mm2(name: str) -> float | None:
    """Silicon area of one target's design point, ``None`` where unmodelled.

    Accelerator targets derive their area from the configured design point;
    the analytic platform models (CPU/GPU/edge) have no silicon-area model —
    consumers (the DSE Pareto frontier, the capacity planner's cost axis)
    drop the axis rather than fake it.
    """

    return getattr(get_target(name), "area_mm2", None)


def target_sram_kb(name: str) -> float | None:
    """On-chip SRAM capacity (KB) of one target's design point.

    Accelerator targets read it from their configured memory model (the
    ``sram_kb`` knob); the analytic platform models (CPU/GPU/edge) have no
    SRAM model and return ``None`` — consumers (the serving layer's KV-cache
    sizing) substitute their own platform default rather than fake one here.
    """

    target = get_target(name)
    for attr in ("_config", "_budget"):
        memory = getattr(getattr(target, attr, None), "memory", None)
        if memory is not None:
            return memory.sram_kb
    return None


register_target(VitalityTarget("vitality"))
register_target(VitalityTarget("vitality-gstationary", dataflow=Dataflow.G_STATIONARY))
register_target(VitalityTarget("vitality-unpipelined", pipelined=False))
register_target(SangerTarget())
register_target(SALOTarget())
register_target(PlatformTarget("cpu"))
register_target(PlatformTarget("edge_gpu"))
register_target(PlatformTarget("gpu"))
register_target(PlatformTarget("pixel3"))

#: The registry exactly as populated at import time.  A fresh worker process
#: rebuilds this state and nothing else, so work may only be shipped to
#: workers for targets whose registration a re-import reproduces.
_IMPORT_TIME_TARGETS = dict(_TARGETS)


def is_import_time_target(name: str) -> bool:
    """True when a worker process would resolve ``name`` to the same backend.

    Targets registered after import (or replacing a built-in) exist only in
    this process; simulating their specs in a worker would crash — or worse,
    silently use the import-time implementation.  Configured names are safe
    exactly when their base target is.
    """

    base = name.partition("[")[0]
    return _TARGETS.get(base) is _IMPORT_TIME_TARGETS.get(base)
