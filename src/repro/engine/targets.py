"""Simulation targets: one uniform ``Target`` protocol over every hardware model.

A target adapts one of the repo's hardware models — the cycle-level ViTALiTy,
Sanger and SALO accelerators or the analytic CPU/GPU platform models — to a
single interface::

    class Target(Protocol):
        name: str
        peak_macs_per_second: float
        def simulate(self, spec: RunSpec) -> RunResult: ...
        def scaled_to_peak(self, peak) -> "Target"      # optional capability

Targets are looked up by name in a registry; the default registry covers the
paper's full evaluation matrix (``vitality`` and its dataflow/pipelining
variants, ``sanger``, ``salo``, and the ``cpu`` / ``edge_gpu`` / ``gpu``
platforms).  New hardware backends plug in via :func:`register_target`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Protocol, runtime_checkable

from repro.engine.results import LayerRecord, RunResult, StepRecord
from repro.engine.spec import RunSpec
from repro.hardware import (
    Dataflow,
    ModelResult,
    SALOAccelerator,
    SangerAccelerator,
    ViTALiTyAccelerator,
    get_platform,
)
from repro.workloads import ModelWorkload


class UnknownTargetError(KeyError):
    """Raised when a target name is not in the registry."""


@runtime_checkable
class Target(Protocol):
    """What every simulation backend must provide."""

    name: str

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput of the target's compute fabric."""
        ...

    def simulate(self, spec: RunSpec) -> RunResult:
        """Execute one run and return the uniform result schema."""
        ...


def _check_attention_mode(spec: RunSpec, native: str, target: str) -> None:
    if spec.attention is not None and spec.attention != native:
        raise ValueError(
            f"target {target!r} only computes its native {native!r} attention; "
            f"got attention={spec.attention!r}")


def _reject_unsupported(spec: RunSpec, target: str, *fields: str) -> None:
    """Fail loudly on RunSpec options this target cannot honor.

    Silently ignoring an option would return unmodified numbers with exit 0
    (and pollute the cache with duplicate entries for the same physical run).
    """

    for name in fields:
        if getattr(spec, name) is not None:
            raise ValueError(f"target {target!r} does not support {name!r} "
                             f"(got {getattr(spec, name)!r})")


def _batch_scaled(spec: RunSpec, result: ModelResult,
                  breakdown: dict[str, float], layers: tuple[LayerRecord, ...],
                  target: str) -> RunResult:
    """Normalise a cycle-level :class:`ModelResult` into a :class:`RunResult`."""

    batch = spec.batch_size
    return RunResult(
        model=result.model,
        target=target,
        attention_latency=result.attention_latency * batch,
        linear_latency=result.linear_latency * batch,
        attention_energy=result.attention_energy * batch,
        linear_energy=result.linear_energy * batch,
        end_to_end_latency=result.end_to_end_latency * batch,
        end_to_end_energy=result.end_to_end_energy * batch,
        energy_breakdown=tuple((key, value * batch) for key, value in breakdown.items()),
        layers=layers,
    )


def _layer_records(result: ModelResult, workload: ModelWorkload,
                   include_linear: bool) -> tuple[LayerRecord, ...]:
    """Attach repeat counts (from the workload specs) to the simulated layers."""

    kinds = [("attention", spec.repeats) for spec in workload.attention_layers]
    if include_linear:
        kinds += [("linear", spec.repeats) for spec in workload.linear_layers]
    records = []
    for layer, (kind, repeats) in zip(result.layers, kinds):
        frequency = layer.frequency_hz
        steps = tuple(
            StepRecord(step.name, step.chunk, step.cycles / frequency, step.energy_joules)
            for step in layer.steps
        )
        records.append(LayerRecord(name=layer.name, kind=kind, repeats=repeats,
                                   latency_seconds=layer.latency_seconds,
                                   energy_joules=layer.energy_joules, steps=steps))
    return tuple(records)


def _table5_breakdown(layers: tuple[LayerRecord, ...]) -> dict[str, float]:
    """Table V energy split of the attention module, from the step records.

    Mirrors ``ViTALiTyAccelerator.attention_energy_breakdown`` (same
    per-layer accumulation order, so the totals are bit-identical) without
    re-simulating the attention layers.
    """

    data_access = other_processors = systolic_array = 0.0
    for layer in layers:
        if layer.kind != "attention":
            continue
        layer_data = layer_other = layer_systolic = 0.0
        for step in layer.steps:
            if step.chunk in ("systolic", "sa_diag"):
                layer_systolic += step.energy_joules
            elif step.chunk == "memory":
                layer_data += step.energy_joules
            else:
                layer_other += step.energy_joules
        data_access += layer_data * layer.repeats
        other_processors += layer_other * layer.repeats
        systolic_array += layer_systolic * layer.repeats
    return {
        "data_access": data_access,
        "other_processors": other_processors,
        "systolic_array": systolic_array,
    }


class VitalityTarget:
    """The ViTALiTy accelerator (Section IV), with optional variant defaults.

    ``dataflow`` / ``pipelined`` set the variant's defaults; a
    :class:`RunSpec` may still override either per run.
    """

    def __init__(self, name: str = "vitality",
                 dataflow: Dataflow = Dataflow.DOWN_FORWARD,
                 pipelined: bool = True,
                 default_peak: float | None = None):
        self.name = name
        self.default_dataflow = dataflow
        self.default_pipelined = pipelined
        self.default_peak = default_peak

    def _accelerator(self, spec: RunSpec) -> ViTALiTyAccelerator:
        dataflow = (Dataflow(spec.dataflow) if spec.dataflow is not None
                    else self.default_dataflow)
        pipelined = (spec.pipelined if spec.pipelined is not None
                     else self.default_pipelined)
        accelerator = ViTALiTyAccelerator(dataflow=dataflow, pipelined=pipelined)
        peak = spec.scale_to_peak if spec.scale_to_peak is not None else self.default_peak
        if peak is not None and peak > accelerator.peak_macs_per_second:
            accelerator = accelerator.scaled_to_peak(peak)
        return accelerator

    @property
    def peak_macs_per_second(self) -> float:
        return ViTALiTyAccelerator().peak_macs_per_second

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """Drop a ``scale_to_peak`` at or below the native peak (a no-op).

        Not applied on pre-scaled variants (``default_peak`` set), where a
        ``None`` scale falls back to the variant's own peak instead.
        """

        if (self.default_peak is None
                and spec.scale_to_peak is not None
                and spec.scale_to_peak <= self.peak_macs_per_second):
            spec = replace(spec, scale_to_peak=None)
        return spec

    def scaled_to_peak(self, peak_macs_per_second: float) -> "VitalityTarget":
        """A variant whose runs scale the PE array up to the given peak."""

        return VitalityTarget(f"{self.name}@{peak_macs_per_second:.3g}macs",
                              dataflow=self.default_dataflow,
                              pipelined=self.default_pipelined,
                              default_peak=peak_macs_per_second)

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "taylor", self.name)
        accelerator = self._accelerator(spec)
        workload = spec.workload()
        result = accelerator.run_model(workload, include_linear=spec.include_linear)
        layers = _layer_records(result, workload, spec.include_linear)
        breakdown = _table5_breakdown(layers)
        return _batch_scaled(spec, result, breakdown, layers, self.name)


class SangerTarget:
    """The Sanger sparse-attention accelerator baseline (MICRO 2021)."""

    def __init__(self, name: str = "sanger"):
        self.name = name

    @property
    def peak_macs_per_second(self) -> float:
        accelerator = SangerAccelerator()
        return accelerator.config.re_pe_array.lanes * accelerator.config.frequency_hz

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "vanilla", self.name)
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        accelerator = SangerAccelerator()
        workload = spec.workload()
        result = accelerator.run_model(workload, include_linear=spec.include_linear)
        breakdown = {"attention": result.attention_energy, "linear": result.linear_energy}
        layers = _layer_records(result, workload, spec.include_linear)
        return _batch_scaled(spec, result, breakdown, layers, self.name)


class SALOTarget:
    """The SALO window-attention accelerator under the ViTALiTy budget.

    SALO models only the attention module, so ``linear_latency`` is always
    zero regardless of ``include_linear``.
    """

    def __init__(self, name: str = "salo"):
        self.name = name

    @property
    def peak_macs_per_second(self) -> float:
        accelerator = SALOAccelerator()
        return accelerator.budget.sa_general.lanes * accelerator.budget.frequency_hz

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """``include_linear`` is a no-op here (SALO models attention only)."""

        if not spec.include_linear:
            spec = replace(spec, include_linear=True)
        return spec

    def simulate(self, spec: RunSpec) -> RunResult:
        _check_attention_mode(spec, "vanilla", self.name)
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        accelerator = SALOAccelerator()
        workload = spec.workload()
        result = accelerator.run_model(workload)
        breakdown = {"attention": result.attention_energy, "linear": 0.0}
        layers = _layer_records(result, workload, include_linear=False)
        return _batch_scaled(spec, result, breakdown, layers, self.name)


class PlatformTarget:
    """An analytic general-purpose platform (CPU / GPU / edge GPU / Pixel 3).

    Platforms evaluate either attention formulation; the default is the
    ``vanilla`` softmax attention (the paper's baseline configuration).
    """

    def __init__(self, name: str):
        self.name = name
        self.platform = get_platform(name)

    @property
    def peak_macs_per_second(self) -> float:
        return self.platform.peak_macs_per_second

    def canonical_spec(self, spec: RunSpec) -> RunSpec:
        """An unset attention mode means the platform default, ``vanilla``."""

        if spec.attention is None:
            spec = replace(spec, attention="vanilla")
        return spec

    def simulate(self, spec: RunSpec) -> RunResult:
        _reject_unsupported(spec, self.name, "dataflow", "pipelined", "scale_to_peak")
        taylor = (spec.attention or "vanilla") == "taylor"
        workload = spec.workload()
        attention_latency = self.platform.attention_latency(workload, taylor=taylor)
        linear_latency = self.platform.linear_latency(workload) if spec.include_linear else 0.0
        if spec.include_linear:
            end_to_end_latency = self.platform.end_to_end_latency(workload, taylor=taylor)
            end_to_end_energy = self.platform.end_to_end_energy(workload, taylor=taylor)
        else:
            end_to_end_latency = attention_latency
            end_to_end_energy = self.platform.attention_energy(workload, taylor=taylor)
        power = self.platform.average_power_watts
        profile = (self.platform.taylor_attention_profile(workload) if taylor
                   else self.platform.vanilla_attention_profile(workload))
        steps = tuple(
            StepRecord(name, self.name, latency, latency * power)
            for name, latency in profile.items()
        )
        layers = (LayerRecord(
            name=f"{'taylor' if taylor else 'vanilla'}_attention_profile",
            kind="profile", repeats=1, latency_seconds=attention_latency,
            energy_joules=attention_latency * power, steps=steps),)
        batch = spec.batch_size
        return RunResult(
            model=workload.name if spec.tokens is not None else spec.model,
            target=self.name,
            attention_latency=attention_latency * batch,
            linear_latency=linear_latency * batch,
            attention_energy=attention_latency * power * batch,
            linear_energy=linear_latency * power * batch,
            end_to_end_latency=end_to_end_latency * batch,
            end_to_end_energy=end_to_end_energy * batch,
            energy_breakdown=(("attention", attention_latency * power * batch),
                              ("linear", linear_latency * power * batch)),
            layers=layers,
        )


# ---------------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------------

_TARGETS: dict[str, Target] = {}


def register_target(target: Target, replace: bool = False) -> Target:
    """Register a target under its ``name`` (``replace=True`` to override).

    Replacing a target evicts its memoised results from the default cache so
    the new backend cannot be shadowed by its predecessor's numbers.
    (Privately held :class:`~repro.engine.ResultCache` instances must be
    invalidated by their owners.)
    """

    if target.name in _TARGETS:
        if not replace:
            raise ValueError(f"target {target.name!r} is already registered")
        from repro.engine.cache import DEFAULT_CACHE
        DEFAULT_CACHE.invalidate_target(target.name)
    _TARGETS[target.name] = target
    return target


def get_target(name: str) -> Target:
    """Look up a registered target by name."""

    try:
        return _TARGETS[name]
    except KeyError:
        raise UnknownTargetError(
            f"unknown target {name!r}; available: {', '.join(list_targets())}"
        ) from None


def list_targets() -> list[str]:
    """Names of every registered target, in registration order."""

    return list(_TARGETS)


register_target(VitalityTarget("vitality"))
register_target(VitalityTarget("vitality-gstationary", dataflow=Dataflow.G_STATIONARY))
register_target(VitalityTarget("vitality-unpipelined", pipelined=False))
register_target(SangerTarget())
register_target(SALOTarget())
register_target(PlatformTarget("cpu"))
register_target(PlatformTarget("edge_gpu"))
register_target(PlatformTarget("gpu"))
register_target(PlatformTarget("pixel3"))
