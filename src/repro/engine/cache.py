"""Memoising result cache keyed on :class:`~repro.engine.RunSpec`.

The paper's figures and tables repeatedly simulate the same (model, target)
pairs — Fig. 11 and Fig. 12 alone share every one of their runs.  Because a
``RunSpec`` is frozen and hashable and a ``RunResult`` is immutable, results
can be memoised safely: the first simulation of a spec pays the cost, every
later request is a dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.results import RunResult
from repro.engine.spec import RunSpec


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one cache (a snapshot, not a live view)."""

    hits: int
    misses: int
    size: int
    evictions: int = 0
    max_entries: int | None = None
    #: Results served from the persistent tier (always 0 for the in-memory
    #: :class:`ResultCache`; see :class:`~repro.engine.DiskResultCache`).
    disk_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, object]:
        return {"hits": self.hits, "misses": self.misses, "size": self.size,
                "evictions": self.evictions, "max_entries": self.max_entries,
                "disk_hits": self.disk_hits, "hit_rate": self.hit_rate}


class ResultCache:
    """An in-memory memo table from :class:`RunSpec` to :class:`RunResult`.

    With ``max_entries`` set the table is LRU-bounded: inserting beyond the
    bound evicts the least-recently-used entry (hits refresh recency), so
    long serving runs over many (model, batch) shapes hold the cache at a
    fixed footprint.  The default is unbounded — the paper's figure/table
    sweeps revisit a small, finite spec set.
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._store: dict[RunSpec, RunResult] = {}
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec in self._store

    def get_or_run(self, spec: RunSpec,
                   runner: Callable[[RunSpec], RunResult]) -> RunResult:
        """Return the cached result for ``spec``, running ``runner`` on a miss."""

        try:
            result = self._store.pop(spec)
        except KeyError:
            self._misses += 1
            result = runner(spec)
            self._store[spec] = result
            if self._max_entries is not None:
                while len(self._store) > self._max_entries:
                    self._store.pop(next(iter(self._store)))
                    self._evictions += 1
            return result
        self._hits += 1
        self._store[spec] = result       # re-insert at the back: most recent
        return result

    def invalidate_target(self, target: str) -> int:
        """Drop every memoised result produced by the named target.

        Called when a target is re-registered, so a replaced backend cannot
        keep serving its predecessor's numbers.  Returns the eviction count.
        """

        stale = [spec for spec in self._store if spec.target == target]
        for spec in stale:
            del self._store[spec]
        return len(stale)

    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses,
                          size=len(self._store), evictions=self._evictions,
                          max_entries=self._max_entries)

    def clear(self) -> None:
        self._store.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0


#: Process-wide default cache used by :func:`simulate` when none is passed.
DEFAULT_CACHE = ResultCache()


def _resolve(spec: RunSpec):
    """(target, canonical spec) for one run request.

    Three canonicalisations keep physically identical runs on one cache
    entry: the target's name is normalised (configured names —
    ``vitality[...]`` — sort their knobs, canonicalise values and drop
    reference settings), the model's name is normalised the same way with
    the deprecated ``tokens`` override lowered onto the ``tokens=`` knob
    (``("deit-tiny", tokens=512)`` keys as ``"deit-tiny[tokens=512]"``), and
    the target collapses spec options that are no-ops for it (e.g. a
    ``scale_to_peak`` at or below ViTALiTy's native peak).
    """

    from dataclasses import replace

    from repro.engine.targets import get_target
    from repro.workloads import canonical_workload_name

    target = get_target(spec.target)
    if target.name != spec.target:
        spec = replace(spec, target=target.name)
    model = canonical_workload_name(spec.model, tokens=spec.tokens)
    if model != spec.model or spec.tokens is not None:
        spec = replace(spec, model=model, tokens=None)
    canonicalise = getattr(target, "canonical_spec", None)
    if canonicalise is not None:
        spec = canonicalise(spec)
    return target, spec


def canonicalise_spec(spec: RunSpec) -> RunSpec:
    """The exact spec :func:`simulate` would key the result cache on."""

    return _resolve(spec)[1]


def simulate(spec: RunSpec | str, *, cache: ResultCache | None = None,
             **spec_kwargs) -> RunResult:
    """Simulate one run, memoised through a result cache.

    Accepts either a ready :class:`RunSpec` or a model name plus
    ``RunSpec`` keyword arguments::

        simulate(RunSpec("deit-tiny", target="sanger"))
        simulate("deit-tiny", target="sanger")
    """

    if isinstance(spec, str):
        spec = RunSpec(spec, **spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass RunSpec kwargs only with a model name, not a RunSpec")
    target, spec = _resolve(spec)
    cache = DEFAULT_CACHE if cache is None else cache
    return cache.get_or_run(spec, lambda s: target.simulate(s))


def cache_stats() -> CacheStats:
    """Hit/miss counters of the process-wide default cache."""

    return DEFAULT_CACHE.stats()


def clear_cache() -> None:
    """Drop every memoised result from the process-wide default cache."""

    DEFAULT_CACHE.clear()
