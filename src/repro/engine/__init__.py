"""The unified simulation engine: one public API over every hardware model.

This package is the single entry point for running the paper's hardware
evaluation matrix.  The pieces:

* :class:`Target` — the protocol every simulation backend implements, with a
  registry mapping names (``vitality``, ``vitality-gstationary``,
  ``vitality-unpipelined``, ``sanger``, ``salo``, ``cpu``, ``edge_gpu``,
  ``gpu``, ``pixel3``) to adapters over the cycle-level accelerators and
  analytic platform models (:mod:`targets`);
* :class:`RunSpec` — a frozen, hashable description of one run (model,
  target, attention mode, batch size, token override, dataflow, pipelining,
  peak scaling) (:mod:`spec`);
* :func:`simulate` and :class:`ResultCache` — memoised execution keyed on
  the spec, so repeated figure/table experiments never re-simulate an
  identical run (:mod:`cache`);
* :class:`Sweep` — declarative cross-product expansion of models x targets x
  options, executed through the cache (:mod:`sweep`);
* :class:`RunResult` — the uniform latency/energy/step schema every target
  returns, JSON-serialisable via ``to_dict()`` (:mod:`results`).

Typical use::

    from repro.engine import RunSpec, simulate

    result = simulate(RunSpec("deit-tiny", target="sanger"))
    print(result.end_to_end_latency, result.to_json())
"""

from repro.engine.cache import (
    CacheStats,
    DEFAULT_CACHE,
    ResultCache,
    cache_stats,
    canonicalise_spec,
    clear_cache,
    simulate,
)
from repro.engine.store import DiskResultCache
from repro.engine.results import LayerRecord, RunResult, StepRecord
from repro.engine.spec import ATTENTION_MODES, DATAFLOWS, RunSpec, scale_workload_tokens
from repro.engine.sweep import Sweep, SweepOutcome, sweep
from repro.engine.targets import (
    PlatformTarget,
    SALOTarget,
    SangerTarget,
    Target,
    UnknownTargetError,
    VitalityTarget,
    get_target,
    list_targets,
    register_target,
    split_configured_names,
    target_area_mm2,
    target_sram_kb,
)
from repro.workloads import UnknownWorkloadError, canonical_workload_name

__all__ = [
    "ATTENTION_MODES",
    "DATAFLOWS",
    "CacheStats",
    "DEFAULT_CACHE",
    "DiskResultCache",
    "LayerRecord",
    "PlatformTarget",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SALOTarget",
    "SangerTarget",
    "StepRecord",
    "Sweep",
    "SweepOutcome",
    "Target",
    "UnknownTargetError",
    "UnknownWorkloadError",
    "VitalityTarget",
    "cache_stats",
    "canonical_workload_name",
    "canonicalise_spec",
    "clear_cache",
    "get_target",
    "list_targets",
    "register_target",
    "scale_workload_tokens",
    "simulate",
    "split_configured_names",
    "sweep",
    "target_area_mm2",
    "target_sram_kb",
]
