"""On-disk JSON persistence for the result cache.

A :class:`DiskResultCache` is a :class:`~repro.engine.ResultCache` whose
misses fall through to a directory of JSON files before simulating, and
whose simulated results are written back — so repeated CLI invocations and
DSE re-runs skip already-simulated design points *across processes*::

    repro --cache-dir .repro-cache dse ...     # first run simulates
    repro --cache-dir .repro-cache dse ...     # second run reads JSON

Entries are keyed by the SHA-256 of the canonical spec JSON and stored one
file per run as ``{"spec": ..., "result": ...}`` — self-describing, greppable
and safe to prune file-by-file.  Writes go through a per-process temp file
and an atomic rename, so concurrent sweeps sharing a directory can only race
benignly (both write the same deterministic payload).  Corrupt or truncated
entries are treated as misses and overwritten, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.results import RunResult
from repro.engine.spec import RunSpec


class DiskResultCache(ResultCache):
    """A result cache backed by a directory of one-JSON-file-per-run entries.

    The in-memory tier (and its LRU bound, hit/miss accounting) behaves
    exactly like :class:`ResultCache`; the directory adds a persistent tier
    underneath it.  ``stats().disk_hits`` counts results served from disk
    instead of simulation.
    """

    def __init__(self, directory: str | os.PathLike[str],
                 max_entries: int | None = None):
        super().__init__(max_entries=max_entries)
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._disk_hits = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path(self, spec: RunSpec) -> Path:
        key = json.dumps(spec.to_dict(), sort_keys=True)
        return self._directory / f"{hashlib.sha256(key.encode()).hexdigest()}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return super().__contains__(spec) or self._path(spec).exists()

    def get_or_run(self, spec: RunSpec,
                   runner: Callable[[RunSpec], RunResult]) -> RunResult:
        return super().get_or_run(spec, lambda s: self._load_or_run(s, runner))

    def _load_or_run(self, spec: RunSpec,
                     runner: Callable[[RunSpec], RunResult]) -> RunResult:
        path = self._path(spec)
        try:
            payload = json.loads(path.read_text())
            result = RunResult.from_dict(payload["result"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            pass                                   # absent or corrupt: simulate
        else:
            self._disk_hits += 1
            return result
        result = runner(spec)
        payload = {"spec": spec.to_dict(),
                   "result": result.to_dict(include_layers=True)}
        scratch = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        scratch.write_text(json.dumps(payload))
        scratch.replace(path)                      # atomic publish
        return result

    def stats(self) -> CacheStats:
        base = super().stats()
        return CacheStats(hits=base.hits, misses=base.misses, size=base.size,
                          evictions=base.evictions, max_entries=base.max_entries,
                          disk_hits=self._disk_hits)

    def clear(self) -> None:
        """Drop the in-memory tier and delete every on-disk entry."""

        super().clear()
        self._disk_hits = 0
        for entry in self._directory.glob("*.json"):
            entry.unlink(missing_ok=True)
