"""Declarative cross-product sweeps over models, targets and run options.

A :class:`Sweep` expands ``{models} x {targets} x {options}`` into
:class:`RunSpec` instances and executes them through the result cache, so a
sweep that revisits pairs another figure already simulated costs nothing::

    outcome = (Sweep()
               .models("deit-tiny", "deit-small")
               .targets("vitality", "sanger")
               .run())
    for result in outcome.results:
        print(result.model, result.target, result.end_to_end_latency)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.cache import DEFAULT_CACHE, ResultCache, simulate
from repro.engine.results import RunResult
from repro.engine.spec import RunSpec
from repro.workloads import list_workloads


@dataclass(frozen=True)
class SweepOutcome:
    """Every result of one sweep plus the cache traffic it generated."""

    specs: tuple[RunSpec, ...]
    results: tuple[RunResult, ...]
    hits: int
    misses: int

    def to_rows(self) -> list[dict[str, object]]:
        """Flat per-run rows, ready for markdown/JSON reporting."""

        rows = []
        for spec, result in zip(self.specs, self.results):
            rows.append({
                "model": spec.model,
                "target": spec.target,
                "attention": spec.attention or "native",
                "batch_size": spec.batch_size,
                "attention_latency_ms": result.attention_latency * 1e3,
                "end_to_end_latency_ms": result.end_to_end_latency * 1e3,
                "end_to_end_energy_mj": result.end_to_end_energy * 1e3,
            })
        return rows

    def to_dict(self) -> dict[str, object]:
        return {
            "runs": [dict(spec=spec.to_dict(), result=result.to_dict())
                     for spec, result in zip(self.specs, self.results)],
            "cache": {"hits": self.hits, "misses": self.misses},
        }


def _unique_names(values: tuple, method: str) -> tuple[str, ...]:
    """Flatten ``(iterable,)`` or ``(name, name, ...)`` into unique names."""

    if len(values) == 1 and not isinstance(values[0], str):
        values = tuple(values[0])
    for value in values:
        if not isinstance(value, str):
            raise TypeError(f"{method} expects workload/target names, "
                            f"got {value!r}")
    return tuple(dict.fromkeys(values))


@dataclass
class Sweep:
    """Builder for a cross product of simulation runs.

    Each ``models``/``targets``/... call replaces that axis; axes left at
    their defaults contribute a single value to the product.  The models
    axis defaults to every workload *only when never set* — an explicitly
    empty selection yields an empty sweep, it does not fan out.
    """

    _models: tuple[str, ...] | None = None
    _targets: tuple[str, ...] = ("vitality",)
    _attentions: tuple[str | None, ...] = (None,)
    _batch_sizes: tuple[int, ...] = (1,)
    _token_counts: tuple[int | None, ...] = (None,)
    _dataflows: tuple[str | None, ...] = (None,)
    _include_linear: bool = True

    def models(self, *names: str) -> "Sweep":
        self._models = tuple(names)
        return self

    def all_models(self) -> "Sweep":
        self._models = tuple(list_workloads())
        return self

    def targets(self, *names: str) -> "Sweep":
        self._targets = tuple(names)
        return self

    def over_models(self, *names) -> "Sweep":
        """Set the models axis from varargs *or* one iterable, deduplicated.

        Accepting an iterable lets callers that hold a collection of names —
        a serving fleet's workload mix, another sweep's axis — feed it
        straight in (``.over_models(mix_names)``) instead of hand-building
        cross-products; duplicates collapse order-preservingly, so a fleet
        spec like ``2xvitality,1xgpu`` contributes each name once.
        """

        self._models = _unique_names(names, "over_models")
        return self

    def over_targets(self, *names) -> "Sweep":
        """Set the targets axis from varargs *or* one iterable, deduplicated
        (the counterpart of :meth:`over_models` — see there)."""

        self._targets = _unique_names(names, "over_targets")
        return self

    def attentions(self, *modes: str | None) -> "Sweep":
        self._attentions = tuple(modes)
        return self

    def batch_sizes(self, *sizes: int) -> "Sweep":
        self._batch_sizes = tuple(sizes)
        return self

    def token_counts(self, *counts: int | None) -> "Sweep":
        self._token_counts = tuple(counts)
        return self

    def dataflows(self, *flows: str | None) -> "Sweep":
        self._dataflows = tuple(flows)
        return self

    def attention_only(self) -> "Sweep":
        self._include_linear = False
        return self

    def expand(self) -> Iterator[RunSpec]:
        """Yield the cross product as :class:`RunSpec` instances."""

        models = self._models if self._models is not None else tuple(list_workloads())
        for model, target, attention, batch, tokens, dataflow in itertools.product(
                models, self._targets, self._attentions, self._batch_sizes,
                self._token_counts, self._dataflows):
            yield RunSpec(model=model, target=target, attention=attention,
                          batch_size=batch, tokens=tokens, dataflow=dataflow,
                          include_linear=self._include_linear)

    def run(self, cache: ResultCache | None = None) -> SweepOutcome:
        """Execute every run in the product through the (shared) result cache."""

        cache = DEFAULT_CACHE if cache is None else cache
        before = cache.stats()
        specs = tuple(self.expand())
        results = tuple(simulate(spec, cache=cache) for spec in specs)
        after = cache.stats()
        return SweepOutcome(specs=specs, results=results,
                            hits=after.hits - before.hits,
                            misses=after.misses - before.misses)


def sweep(models: Sequence[str], targets: Sequence[str],
          cache: ResultCache | None = None, **axes) -> SweepOutcome:
    """One-call convenience wrapper around :class:`Sweep`.

    ``axes`` may set ``attentions``, ``batch_sizes``, ``token_counts``,
    ``dataflows`` (sequences) or ``include_linear`` (bool).
    """

    builder = Sweep().models(*models).targets(*targets)
    valid_axes = ("attentions", "batch_sizes", "token_counts", "dataflows")
    for axis, values in axes.items():
        if axis == "include_linear":
            if not values:
                builder.attention_only()
            continue
        if axis not in valid_axes:
            raise TypeError(f"unknown sweep axis {axis!r}; expected one of "
                            f"{valid_axes} or include_linear")
        getattr(builder, axis)(*values)
    return builder.run(cache=cache)
