"""Declarative cross-product sweeps over models, targets and run options.

A :class:`Sweep` expands ``{models} x {targets} x {options}`` into
:class:`RunSpec` instances and executes them through the result cache, so a
sweep that revisits pairs another figure already simulated costs nothing::

    outcome = (Sweep()
               .models("deit-tiny", "deit-small")
               .targets("vitality", "sanger")
               .run())
    for result in outcome.results:
        print(result.model, result.target, result.end_to_end_latency)
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.engine.cache import DEFAULT_CACHE, ResultCache, canonicalise_spec, simulate
from repro.engine.results import RunResult
from repro.engine.spec import RunSpec
from repro.workloads import list_workloads


def _simulate_fresh(spec: RunSpec) -> RunResult:
    """Worker entry point for parallel sweeps (must be module-level to pickle).

    Runs through the worker process's own default cache; the parent inserts
    the returned result into the sweep's cache, so parallel and serial runs
    leave identical cache states behind.
    """

    return simulate(spec)


@dataclass(frozen=True)
class SweepOutcome:
    """Every result of one sweep plus the cache traffic it generated."""

    specs: tuple[RunSpec, ...]
    results: tuple[RunResult, ...]
    hits: int
    misses: int
    #: Of the misses, how many were served from a persistent tier instead of
    #: simulation (only nonzero through a :class:`~repro.engine.DiskResultCache`).
    disk_hits: int = 0

    def to_rows(self) -> list[dict[str, object]]:
        """Flat per-run rows, ready for markdown/JSON reporting."""

        rows = []
        for spec, result in zip(self.specs, self.results):
            rows.append({
                "model": spec.model,
                "target": spec.target,
                "attention": spec.attention or "native",
                "batch_size": spec.batch_size,
                "attention_latency_ms": result.attention_latency * 1e3,
                "end_to_end_latency_ms": result.end_to_end_latency * 1e3,
                "end_to_end_energy_mj": result.end_to_end_energy * 1e3,
            })
        return rows

    def to_dict(self) -> dict[str, object]:
        return {
            "runs": [dict(spec=spec.to_dict(), result=result.to_dict())
                     for spec, result in zip(self.specs, self.results)],
            "cache": {"hits": self.hits, "misses": self.misses,
                      "disk_hits": self.disk_hits},
        }


def _unique_names(values: tuple, method: str) -> tuple[str, ...]:
    """Flatten ``(iterable,)`` or ``(name, name, ...)`` into unique names."""

    if len(values) == 1 and not isinstance(values[0], str):
        values = tuple(values[0])
    for value in values:
        if not isinstance(value, str):
            raise TypeError(f"{method} expects workload/target names, "
                            f"got {value!r}")
    return tuple(dict.fromkeys(values))


@dataclass
class Sweep:
    """Builder for a cross product of simulation runs.

    Each ``models``/``targets``/... call replaces that axis; axes left at
    their defaults contribute a single value to the product.  The models
    axis defaults to every workload *only when never set* — an explicitly
    empty selection yields an empty sweep, it does not fan out.
    """

    _models: tuple[str, ...] | None = None
    _model_configs: tuple[str | None, ...] = (None,)
    _targets: tuple[str, ...] = ("vitality",)
    _configs: tuple[str | None, ...] = (None,)
    _attentions: tuple[str | None, ...] = (None,)
    _batch_sizes: tuple[int, ...] = (1,)
    _token_counts: tuple[int | None, ...] = (None,)
    _dataflows: tuple[str | None, ...] = (None,)
    _include_linear: bool = True

    def models(self, *names: str) -> "Sweep":
        self._models = tuple(names)
        return self

    def all_models(self) -> "Sweep":
        self._models = tuple(list_workloads())
        return self

    def targets(self, *names: str) -> "Sweep":
        self._targets = tuple(names)
        return self

    def over_models(self, *names) -> "Sweep":
        """Set the models axis from varargs *or* one iterable, deduplicated.

        Accepting an iterable lets callers that hold a collection of names —
        a serving fleet's workload mix, another sweep's axis — feed it
        straight in (``.over_models(mix_names)``) instead of hand-building
        cross-products; duplicates collapse order-preservingly, so a fleet
        spec like ``2xvitality,1xgpu`` contributes each name once.
        """

        self._models = _unique_names(names, "over_models")
        return self

    def over_targets(self, *names) -> "Sweep":
        """Set the targets axis from varargs *or* one iterable, deduplicated
        (the counterpart of :meth:`over_models` — see there)."""

        self._targets = _unique_names(names, "over_targets")
        return self

    def over_configs(self, *knob_strings) -> "Sweep":
        """Set a design-point axis of knob strings crossed with the targets.

        Each value is a bracketed-name body such as ``"pe=32x32,freq=1ghz"``;
        the expansion runs every target at every design point
        (``vitality[pe=32x32,freq=1ghz]``).  An empty string means the
        target's reference design point, so ``over_configs("", "pe=32x32")``
        compares a scaled design against Table III.  Accepts varargs or one
        iterable, deduplicated, like :meth:`over_models`.
        """

        self._configs = _unique_names(knob_strings, "over_configs")
        return self

    def model_configs(self, *knob_strings) -> "Sweep":
        """Set a workload-knob axis crossed with the models — the workload
        side of :meth:`over_configs`.

        Each value is a workload-grammar bracket body such as
        ``"tokens=1024"`` or ``"kv_tokens=2048,phase=decode"``; the expansion
        runs every model at every configuration
        (``deit-tiny[tokens=1024]``).  An empty string means the family's
        reference geometry, so the model-knob × target-knob product
        ``model_configs("", "tokens=1024").over_configs("", "pe=32x32")`` is
        fully symmetric.  Accepts varargs or one iterable, deduplicated.
        """

        self._model_configs = _unique_names(knob_strings, "model_configs")
        return self

    def attentions(self, *modes: str | None) -> "Sweep":
        self._attentions = tuple(modes)
        return self

    def batch_sizes(self, *sizes: int) -> "Sweep":
        self._batch_sizes = tuple(sizes)
        return self

    def token_counts(self, *counts: int | None) -> "Sweep":
        self._token_counts = tuple(counts)
        return self

    def dataflows(self, *flows: str | None) -> "Sweep":
        self._dataflows = tuple(flows)
        return self

    def attention_only(self) -> "Sweep":
        self._include_linear = False
        return self

    def expand(self) -> Iterator[RunSpec]:
        """Yield the cross product as :class:`RunSpec` instances."""

        models = self._models if self._models is not None else tuple(list_workloads())
        for model, model_config, target, config, attention, batch, tokens, dataflow \
                in itertools.product(
                    models, self._model_configs, self._targets, self._configs,
                    self._attentions, self._batch_sizes, self._token_counts,
                    self._dataflows):
            if model_config:
                if "[" in model:
                    raise ValueError(
                        f"cannot apply model_configs knobs {model_config!r} to "
                        f"the already-configured model {model!r}")
                model = f"{model}[{model_config}]"
            if config:
                if "[" in target:
                    raise ValueError(
                        f"cannot apply over_configs knobs {config!r} to the "
                        f"already-configured target {target!r}")
                target = f"{target}[{config}]"
            yield RunSpec(model=model, target=target, attention=attention,
                          batch_size=batch, tokens=tokens, dataflow=dataflow,
                          include_linear=self._include_linear)

    def run(self, cache: ResultCache | None = None,
            jobs: int | None = None) -> SweepOutcome:
        """Execute every run in the product through the (shared) result cache.

        With ``jobs`` > 1, cache misses fan out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`; the simulators are
        deterministic, so the outcome — results *and* cache accounting — is
        identical to the serial path, only the wall clock changes.
        """

        cache = DEFAULT_CACHE if cache is None else cache
        before = cache.stats()
        specs = tuple(self.expand())
        if jobs is not None and jobs > 1 and len(specs) > 1:
            results = tuple(self._run_parallel(specs, cache, jobs))
        else:
            results = tuple(simulate(spec, cache=cache) for spec in specs)
        after = cache.stats()
        return SweepOutcome(specs=specs, results=results,
                            hits=after.hits - before.hits,
                            misses=after.misses - before.misses,
                            disk_hits=after.disk_hits - before.disk_hits)

    @staticmethod
    def _run_parallel(specs: Sequence[RunSpec], cache: ResultCache,
                      jobs: int) -> list[RunResult]:
        """Simulate uncached specs in worker processes, then replay the
        serial cache protocol in order (first occurrence a miss, repeats
        hits) so parallel accounting matches the serial path exactly.

        Specs whose target a fresh worker could not reproduce — registered
        after import, or replacing a built-in — are simulated in this
        process instead of being shipped out (a worker would crash on the
        unknown name, or silently answer with the import-time backend).
        """

        from repro.engine.targets import get_target, is_import_time_target

        canonical = [canonicalise_spec(spec) for spec in specs]
        pending = [spec for spec in dict.fromkeys(canonical)
                   if spec not in cache and is_import_time_target(spec.target)]
        computed: dict[RunSpec, RunResult] = {}
        if pending:
            workers = min(jobs, len(pending))
            chunksize = max(1, len(pending) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = dict(zip(pending, pool.map(_simulate_fresh, pending,
                                                      chunksize=chunksize)))

        def runner(spec: RunSpec) -> RunResult:
            # Locally-registered targets, plus duplicates whose first
            # occurrence an LRU-bounded cache already evicted, simulate
            # inline — straight through the target, so no cache but the
            # sweep's own sees the run (the spec is already canonical).
            return computed[spec] if spec in computed \
                else get_target(spec.target).simulate(spec)

        return [cache.get_or_run(spec, runner) for spec in canonical]


def sweep(models: Sequence[str], targets: Sequence[str],
          cache: ResultCache | None = None, jobs: int | None = None,
          **axes) -> SweepOutcome:
    """One-call convenience wrapper around :class:`Sweep`.

    ``axes`` may set ``attentions``, ``batch_sizes``, ``token_counts``,
    ``dataflows``, ``over_configs``, ``model_configs`` (sequences) or
    ``include_linear`` (bool); ``jobs`` enables the parallel execution path.
    """

    builder = Sweep().models(*models).targets(*targets)
    valid_axes = ("attentions", "batch_sizes", "token_counts", "dataflows",
                  "over_configs", "model_configs")
    for axis, values in axes.items():
        if axis == "include_linear":
            if not values:
                builder.attention_only()
            continue
        if axis not in valid_axes:
            raise TypeError(f"unknown sweep axis {axis!r}; expected one of "
                            f"{valid_axes} or include_linear")
        getattr(builder, axis)(*values)
    return builder.run(cache=cache, jobs=jobs)
