"""Minimal reverse-mode automatic differentiation engine over numpy.

This subpackage is the training substrate for the ViTALiTy reproduction.  The
paper trains and fine-tunes Vision Transformers in PyTorch; that framework is
not available in this environment, so ``repro.tensor`` provides the same
capability from scratch: a :class:`Tensor` that records a computation graph
and back-propagates gradients through it, plus the functional building blocks
(softmax, GELU, layer norm, cross entropy, ...) used by the model zoo in
``repro.models``.

The public surface intentionally mirrors a small slice of the PyTorch API so
that the attention and model code reads naturally to anyone familiar with the
original paper's implementation style.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.functional import (
    softmax,
    log_softmax,
    cross_entropy,
    gelu,
    relu,
    sigmoid,
    silu,
    tanh,
    layer_norm,
    dropout,
    one_hot,
    kl_div_with_logits,
    mse_loss,
    hardswish,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "gelu",
    "relu",
    "sigmoid",
    "silu",
    "tanh",
    "layer_norm",
    "dropout",
    "one_hot",
    "kl_div_with_logits",
    "mse_loss",
    "hardswish",
]
