"""Functional building blocks built on :class:`repro.tensor.Tensor`.

These are the differentiable functions used by the neural-network modules and
attention variants: numerically stable softmax / log-softmax, GELU (the ViT
activation), layer normalisation, losses (cross entropy, KL for knowledge
distillation), and dropout.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor, is_grad_enabled


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""

    x = Tensor._ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""

    x = Tensor._ensure(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> Tensor:
    """Encode integer ``labels`` as a one-hot float tensor."""

    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros((labels.size, num_classes), dtype=np.float64)
    encoded[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return Tensor(encoded.reshape(labels.shape + (num_classes,)))


def cross_entropy(logits: Tensor, labels: np.ndarray, label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``labels`` (N,)."""

    logits = Tensor._ensure(logits)
    num_classes = logits.shape[-1]
    targets = one_hot(labels, num_classes)
    if label_smoothing > 0.0:
        smooth = label_smoothing / num_classes
        targets = targets * (1.0 - label_smoothing) + smooth
    log_probs = log_softmax(logits, axis=-1)
    per_sample = -(targets * log_probs).sum(axis=-1)
    return per_sample.mean()


def kl_div_with_logits(student_logits: Tensor, teacher_logits: Tensor, temperature: float = 1.0) -> Tensor:
    """KL(teacher || student) computed from raw logits.

    This is the token-based knowledge-distillation loss used when fine-tuning
    ViTALiTy models (Section V-B of the paper).  The teacher distribution is
    treated as a constant (detached).
    """

    student_logits = Tensor._ensure(student_logits)
    teacher_logits = Tensor._ensure(teacher_logits).detach()
    student_log_probs = log_softmax(student_logits / temperature, axis=-1)
    teacher_probs = softmax(teacher_logits / temperature, axis=-1)
    teacher_log_probs = log_softmax(teacher_logits / temperature, axis=-1)
    per_sample = (teacher_probs * (teacher_log_probs - student_log_probs)).sum(axis=-1)
    return per_sample.mean() * (temperature ** 2)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""

    prediction = Tensor._ensure(prediction)
    target = Tensor._ensure(target).detach()
    diff = prediction - target
    return (diff * diff).mean()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (exact, erf-based), the ViT MLP activation."""

    x = Tensor._ensure(x)
    return x * 0.5 * ((x / np.sqrt(2.0)).erf() + 1.0)


def relu(x: Tensor) -> Tensor:
    return Tensor._ensure(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return Tensor._ensure(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return Tensor._ensure(x).tanh()


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation used by MobileViT's MobileNetV2 blocks."""

    x = Tensor._ensure(x)
    return x * x.sigmoid()


def hardswish(x: Tensor) -> Tensor:
    """Hard-swish activation used by LeViT's convolutional stem."""

    x = Tensor._ensure(x)
    return x * ((x + 3.0).clip(0.0, 6.0) / 6.0)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit, the kernel used by Linear Transformer."""

    x = Tensor._ensure(x)
    negative = (x.exp() - 1.0) * alpha
    return x.where(x.data > 0.0, negative)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-6) -> Tensor:
    """Layer normalisation over the last dimension."""

    x = Tensor._ensure(x)
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    normalised = centred / (variance + eps).sqrt()
    return normalised * weight + bias


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout.  Identity when not training or ``rate`` is zero."""

    if not training or rate <= 0.0:
        return Tensor._ensure(x)
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng or np.random.default_rng()
    x = Tensor._ensure(x)
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with ``weight`` of shape (in, out)."""

    out = Tensor._ensure(x) @ weight
    if bias is not None:
        out = out + bias
    return out
