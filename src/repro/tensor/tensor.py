"""Reverse-mode autograd tensor.

The :class:`Tensor` wraps a ``numpy.ndarray`` and records, for every
operation, a backward closure that accumulates gradients into its inputs.
Calling :meth:`Tensor.backward` on a scalar result performs a topological
sweep of the recorded graph.

Only the operations needed by the ViT models and attention variants in this
repository are implemented; the set is nevertheless broad enough (matmul,
broadcasting arithmetic, reductions, slicing, reshaping, concatenation,
element-wise transcendentals) to express every forward pass in the paper.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Sequence

import numpy as np

# ---------------------------------------------------------------------------
# Global gradient-enabled switch (mirrors torch.no_grad()).
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will record gradient information."""

    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording inside its block."""

    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""

    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # so ndarray + Tensor dispatches to Tensor.__radd__

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""

        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""

        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph construction helpers ------------------------------------------

    @staticmethod
    def _ensure(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"], backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._ensure(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._ensure(other) / self

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(out_data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # -- comparisons (no gradient) -------------------------------------------

    def __gt__(self, other):
        return self.data > _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # -- linear algebra --------------------------------------------------------

    def matmul(self, other) -> "Tensor":
        """Batched matrix multiply with broadcasting over leading dims."""

        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward(grad, out):
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def __rmatmul__(self, other) -> "Tensor":
        return self._ensure(other) @ self

    # -- elementwise transcendentals ------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def erf(self) -> "Tensor":
        from scipy.special import erf as _erf

        out_data = _erf(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * 2.0 / np.sqrt(np.pi) * np.exp(-self.data ** 2))

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad, out):
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Element-wise maximum; gradient flows to the larger operand."""

        other = self._ensure(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad, out):
            self_wins = self.data >= other.data
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * self_wins, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * (~self_wins), other.shape))

        return self._make(out_data, (self, other), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    # -- reductions -------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, out):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, out):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                mask = self.data == self.data.max()
                self._accumulate(grad * mask / mask.sum())
                return
            expanded_out = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded_out
            counts = mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(grad * mask / counts)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation -------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        """Transpose.  Without arguments, swap the last two dimensions."""

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            if self.ndim < 2:
                axes = tuple(range(self.ndim))
            else:
                axes = tuple(range(self.ndim - 2)) + (self.ndim - 1, self.ndim - 2)
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def permute(self, *axes) -> "Tensor":
        return self.transpose(*axes)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad, out):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        return self.reshape(self.shape[:axis] + (1,) + self.shape[axis:])

    def squeeze(self, axis: int) -> "Tensor":
        if self.shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        return self.reshape(self.shape[:axis] + self.shape[axis + 1 :])

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        result = Tensor(out_data)
        if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
            result.requires_grad = True
            result._parents = tuple(tensors)

            def backward(grad, out):
                for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                    if not tensor.requires_grad:
                        continue
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

            result._backward = backward
        return result

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concat(expanded, axis=axis)

    def where(self, condition: np.ndarray, other) -> "Tensor":
        """Return ``condition ? self : other`` (condition carries no grad)."""

        other = self._ensure(other)
        condition = np.asarray(condition, dtype=bool)
        out_data = np.where(condition, self.data, other.data)

        def backward(grad, out):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * condition, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * (~condition), other.shape))

        return self._make(out_data, (self, other), backward)

    # -- backward pass ---------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""

        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad, node)
