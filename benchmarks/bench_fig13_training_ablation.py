"""Fig. 13: training-scheme ablation on DeiT-Tiny (LOWRANK, +SPARSE, +KD, ViTALiTy)."""

import pytest

from repro.experiments.accuracy_exps import fig13_training_ablation


@pytest.mark.slow
def test_fig13_training_ablation(benchmark, report):
    accuracies = benchmark.pedantic(fig13_training_ablation, kwargs={"quick": True},
                                    rounds=1, iterations=1)
    report("Fig. 13 — training-scheme ablation (synthetic-dataset analogue, %)", {
        "measured": accuracies,
        "paper_imagenet": {"baseline": 72.2, "sparse": 71.2, "lowrank": 27.0,
                           "lowrank+sparse": 70.7, "lowrank+sparse+kd": 71.9,
                           "vitality": 70.6, "vitality+kd": 71.9},
    })
    # Structural checks; the LOWRANK-collapse gap requires the longer runs
    # recorded in EXPERIMENTS.md (see bench_fig10_accuracy.py for why).
    for scheme, accuracy in accuracies.items():
        assert 0.0 <= accuracy <= 100.0, scheme
    assert accuracies["lowrank+sparse"] >= accuracies["lowrank"] - 10.0
