"""Observability overhead: tracing must be zero-cost when disabled.

Not a paper artifact — the guard-rail for the observability layer.  Three
configurations of the same seeded LLM serving run are timed (min over
repeats, the standard low-noise estimator):

* ``off``      — ``obs=None``, the literal pre-observability code path;
* ``disabled`` — a passive :class:`Observability` attached (all sinks
  ``None``), the worst case a ``--quiet`` CLI run can hit;
* ``enabled``  — full trace + metrics recording.

The assertion pins the contract from the module docs: attaching a disabled
observer costs under 5% over no observer at all.  Enabled-recording overhead
is recorded in the JSON trajectory but deliberately not bounded — it buys
the trace.
"""

from __future__ import annotations

import time

from repro.obs import MetricsCollector, Observability, TraceRecorder
from repro.serve import KVCacheConfig, make_traffic, serve_llm

REPEATS = 5
RATE = 60.0
DURATION = 4.0


def run_serve(obs=None):
    traffic = make_traffic("poisson", RATE, ("decoder",))
    return serve_llm(traffic, fleet="2xvitality", duration=DURATION, seed=17,
                     prompt_tokens=256, output_tokens=48,
                     kv=KVCacheConfig(capacity_tokens=16384), obs=obs)


def best_of(make_obs) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        obs = make_obs()
        start = time.perf_counter()
        run_serve(obs=obs)
        best = min(best, time.perf_counter() - start)
    return best


def test_trace_overhead(report, bench_json):
    baseline = best_of(lambda: None)
    disabled = best_of(lambda: Observability())
    enabled = best_of(lambda: Observability(trace=TraceRecorder(),
                                            metrics=MetricsCollector()))
    disabled_overhead = disabled / baseline - 1.0
    enabled_overhead = enabled / baseline - 1.0
    payload = {"baseline_seconds": baseline, "disabled_seconds": disabled,
               "enabled_seconds": enabled,
               "disabled_overhead": disabled_overhead,
               "enabled_overhead": enabled_overhead}
    report("observability overhead (min of %d runs)" % REPEATS, payload)
    bench_json("trace_overhead", baseline,
               disabled_overhead=disabled_overhead,
               enabled_overhead=enabled_overhead)
    assert disabled_overhead < 0.05, payload
