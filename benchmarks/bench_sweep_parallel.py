"""Parallel sweep execution: Sweep.run(jobs=N) vs the serial path.

Not a paper artifact — the execution-layer counterpart of the design-space
exploration: the same cross product of design points, simulated serially and
fanned out over worker processes.  The results must be identical (the
simulators are deterministic); only the wall clock may differ.  On a
single-core box process fan-out cannot win — the report records the measured
ratio and the core count either way, and the speedup assertion only applies
where parallel hardware exists.
"""

from __future__ import annotations

import os
import time

from repro.engine import ResultCache, Sweep

#: A 40-design-point space: geometry x frequency around the Table III point.
CONFIGS = tuple(f"pe={rows}x{columns}" for rows in (16, 32, 48, 64, 96)
                for columns in (16, 32, 48, 64)) \
        + tuple(f"freq={megahertz}mhz" for megahertz in range(100, 2100, 100))

JOBS = 4


def _build() -> Sweep:
    return Sweep().all_models().targets("vitality").over_configs(CONFIGS)


def sweep_parallel_study() -> dict[str, object]:
    start = time.perf_counter()
    serial = _build().run(cache=ResultCache())
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _build().run(cache=ResultCache(), jobs=JOBS)
    parallel_seconds = time.perf_counter() - start

    assert serial.results == parallel.results        # identical, not just close
    assert (serial.hits, serial.misses) == (parallel.hits, parallel.misses)
    return {
        "runs": len(serial.results),
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
    }


def test_sweep_parallel(benchmark, report, bench_json):
    rows = benchmark.pedantic(sweep_parallel_study, rounds=1, iterations=1)
    report("Parallel sweep — serial vs jobs=4 over 40 design points x 7 models",
           rows)
    bench_json("sweep_parallel", rows["serial_seconds"],
               throughput_runs_per_second=rows["runs"] / rows["serial_seconds"],
               parallel_seconds=rows["parallel_seconds"],
               speedup=rows["speedup"])
    assert rows["runs"] == len(CONFIGS) * 7
    # Fan-out can only pay for its process overhead when there are cores to
    # fan out onto; on >= JOBS cores the simulation work must dominate.
    if rows["cpus"] is not None and rows["cpus"] >= JOBS:
        assert rows["speedup"] > 1.0, rows
