"""Fig. 11: end-to-end latency speedup of the ViTALiTy accelerator over all baselines."""

from repro.experiments.hardware_exps import (
    PAPER_ATTENTION_SPEEDUP,
    PAPER_FIG11_AVERAGE,
    fig11_latency_speedup,
)


def test_fig11_latency_speedup(benchmark, report):
    rows = benchmark(fig11_latency_speedup)
    averages = {key: sum(row[key] for row in rows.values()) / len(rows)
                for key in ("cpu", "edge_gpu", "gpu", "sanger")}
    attention_averages = {key: sum(row[f"attention_{key}"] for row in rows.values()) / len(rows)
                          for key in ("cpu", "edge_gpu", "gpu", "sanger")}
    report("Fig. 11 — latency speedup of ViTALiTy", {
        "per_model_end_to_end": rows,
        "average_end_to_end": averages,
        "average_attention_only": attention_averages,
        "paper_average_end_to_end": PAPER_FIG11_AVERAGE,
        "paper_average_attention": PAPER_ATTENTION_SPEEDUP,
    })
    for baseline, speedup in averages.items():
        assert speedup > 1.0, baseline
