"""Table I: operation counts of ViTALiTy's Taylor attention vs vanilla softmax attention."""

from repro.experiments.complexity import PAPER_TABLE1, table1_op_counts


def test_table1_op_counts(benchmark, report):
    rows = benchmark(table1_op_counts)
    report("Table I — operation counts (millions)", {
        "measured": rows,
        "paper": PAPER_TABLE1,
    })
    assert rows["deit-tiny"]["ratio_mul"] > 2.5
