"""Serving under load: sustained throughput of taylor vs vanilla fleets.

Not a paper artifact — the fleet-level counterpart of Figs. 11-12: the same
hardware models behind the discrete-event serving simulator, measured as a
deployment would see them (sustained throughput, tail latency, SLO
attainment, energy per request under identical traffic).  With ``--json DIR``
each test leaves a ``BENCH_*.json`` record (wall seconds of one driver run
plus the headline throughput) for the performance trajectory.
"""

from repro.experiments.serving_exps import serving_comparison, serving_fleet_study


def test_serving_throughput(benchmark, report, bench_json):
    rows = benchmark(serving_comparison)
    report("Serving comparison — taylor vs vanilla fleets, identical traffic", rows)
    taylor_rps = max(row["throughput_rps"] for label, row in rows.items()
                     if "taylor" in label)
    # stats.stats.mean is the per-round wall time — the "one driver run"
    # seconds the BENCH_*.json convention records.
    bench_json("serving_throughput", benchmark.stats.stats.mean,
               throughput_rps=taylor_rps)
    for pair in ("accelerator", "cpu_platform"):
        taylor, vanilla = (row for label, row in rows.items()
                           if label.startswith(pair))
        # The taylor fleet sustains more load and does it cheaper per request.
        assert taylor["throughput_rps"] > vanilla["throughput_rps"], pair
        assert taylor["energy_per_request_mj"] < vanilla["energy_per_request_mj"], pair
        assert taylor["p99_ms"] < vanilla["p99_ms"], pair


def test_energy_aware_routing(benchmark, report, bench_json):
    rows = benchmark(serving_fleet_study)
    report("Heterogeneous fleet — least-loaded vs energy-aware routing", rows)
    bench_json("energy_aware_routing", benchmark.stats.stats.mean,
               throughput_rps=rows["energy-aware"]["throughput_rps"])
    assert (rows["energy-aware"]["energy_per_request_mj"]
            < rows["least-loaded"]["energy_per_request_mj"])
    assert (rows["energy-aware"]["gpu_request_share"]
            < rows["least-loaded"]["gpu_request_share"])
