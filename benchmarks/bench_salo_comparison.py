"""Section V-C: attention speedup of ViTALiTy over the SALO accelerator."""

from repro.experiments.hardware_exps import salo_comparison


def test_salo_comparison(benchmark, report):
    speedups = benchmark(salo_comparison)
    report("SALO comparison — attention speedup", {
        "measured": speedups,
        "paper": {"deit-tiny": 4.7, "deit-small": 5.0},
    })
    assert speedups["deit-tiny"] > 2.0
    assert speedups["deit-small"] > 2.0
