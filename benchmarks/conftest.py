"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one table or figure of the paper.  The
benchmark fixture measures the driver's runtime; the printed report (enable
with ``-s``) shows the reproduced rows/series next to the values the paper
reports, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import json

import pytest


def print_report(title: str, payload) -> None:
    """Pretty-print an experiment result below the benchmark output."""

    print(f"\n=== {title} ===")
    print(json.dumps(payload, indent=2, default=_to_serialisable))


def _to_serialisable(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


@pytest.fixture
def report():
    return print_report
