"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one table or figure of the paper.  The
benchmark fixture measures the driver's runtime; the printed report (enable
with ``-s``) shows the reproduced rows/series next to the values the paper
reports, which is what EXPERIMENTS.md records.

Machine-readable trajectory records: run with ``--json DIR`` and benchmarks
that call the ``bench_json`` fixture write one ``BENCH_<name>.json`` file
each into ``DIR`` — a flat ``{"name", "seconds", ...metrics}`` record (wall
seconds of one driver run plus whatever throughput-style metrics the
benchmark reports), so CI and scripts can track performance over time
without scraping pytest output::

    python -m pytest benchmarks/bench_serving_throughput.py --json bench-out
    cat bench-out/BENCH_serving_throughput.json
"""

from __future__ import annotations

import json
import os

import pytest


def pytest_addoption(parser):
    parser.addoption("--json", action="store", default=None, metavar="DIR",
                     help="directory to write machine-readable "
                          "BENCH_<name>.json records into")


def print_report(title: str, payload) -> None:
    """Pretty-print an experiment result below the benchmark output."""

    print(f"\n=== {title} ===")
    print(json.dumps(payload, indent=2, default=_to_serialisable))


def _to_serialisable(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


@pytest.fixture
def report():
    return print_report


@pytest.fixture
def bench_json(request):
    """Write one BENCH_<name>.json record (no-op without ``--json DIR``)."""

    def write(name: str, seconds: float, **metrics) -> None:
        directory = request.config.getoption("--json")
        if not directory:
            return
        os.makedirs(directory, exist_ok=True)
        record = {"name": name, "seconds": seconds, **metrics}
        path = os.path.join(directory, f"BENCH_{name}.json")
        with open(path, "w") as handle:
            json.dump(record, handle, indent=2, default=_to_serialisable)
            handle.write("\n")

    return write
