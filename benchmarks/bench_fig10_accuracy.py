"""Fig. 10: accuracy of BASELINE / SPARSE / LOWRANK / ViTALiTy across ViT models.

Runs the reduced DeiT-Tiny on the synthetic dataset by default (quick mode);
pass ``--run-all-models`` via the FIG10_MODELS environment variable to sweep
more of the model zoo (slower).
"""

import os

import pytest

from repro.experiments.accuracy_exps import PAPER_FIG10, fig10_accuracy

_MODELS = tuple(os.environ.get("FIG10_MODELS", "deit-tiny").split(","))


@pytest.mark.slow
def test_fig10_accuracy(benchmark, report):
    results = benchmark.pedantic(fig10_accuracy,
                                 kwargs={"models": _MODELS, "quick": True},
                                 rounds=1, iterations=1)
    report("Fig. 10 — accuracy per method (synthetic-dataset analogue, %)", {
        "measured": results,
        "paper_imagenet": {model: PAPER_FIG10[model] for model in _MODELS},
    })
    for model, per_scheme in results.items():
        # Structural checks only in quick mode: the LOWRANK-collapse gap needs the
        # longer (quick=False) runs recorded in EXPERIMENTS.md, because a briefly
        # pre-trained baseline has mild attention logits and the Taylor drop-in
        # barely differs from softmax.
        for scheme, accuracy in per_scheme.items():
            assert 0.0 <= accuracy <= 100.0, (model, scheme)
        assert per_scheme["vitality"] >= per_scheme["lowrank"] - 10.0
