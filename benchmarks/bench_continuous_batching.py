"""LLM serving: continuous batching vs monolithic gangs, pool disaggregation.

Not a paper artifact — the autoregressive-serving counterpart of the serving
benchmarks: the same hardware models behind :func:`repro.serve.serve_llm`,
measured as an LLM deployment would see them.  Asserts the two headline
results (iteration-level batching sustains strictly more decode throughput
than request-level gangs on the same fleet; the disaggregated split meets a
TTFT+TPOT SLO pair the equal-area colocated fleet misses) and, with
``--json DIR``, records the decode-throughput trajectory.
"""

from repro.experiments.llm_exps import continuous_vs_disaggregated


def test_continuous_batching(benchmark, report, bench_json):
    rows = benchmark(continuous_vs_disaggregated)
    report("LLM serving — continuous batching and disaggregation", rows)
    continuous = next(row for label, row in rows.items()
                      if "continuous" in label)
    monolithic = next(row for label, row in rows.items()
                      if "monolithic" in label)
    colocated = next(row for label, row in rows.items()
                     if "colocated" in label)
    disaggregated = next(row for label, row in rows.items()
                         if "disaggregated" in label)
    bench_json("continuous_batching", benchmark.stats.stats.mean,
               continuous_tokens_per_second=
                   continuous["decode_tokens_per_second"],
               monolithic_tokens_per_second=
                   monolithic["decode_tokens_per_second"],
               disagg_tpot_p95_ms=disaggregated["tpot_p95_ms"])
    assert (continuous["decode_tokens_per_second"]
            > monolithic["decode_tokens_per_second"])
    assert continuous["mean_decode_batch"] > monolithic["mean_decode_batch"]
    assert disaggregated["meets_slo_pair"]
    assert not colocated["meets_slo_pair"]
    assert disaggregated["tpot_p95_ms"] < colocated["tpot_p95_ms"]
