"""Fig. 1: runtime breakdown of DeiT-Tiny's MHA module on GPU / edge GPU / Pixel 3."""

from repro.experiments.profiling_exps import PAPER_FIG1, fig1_runtime_breakdown


def test_fig1_runtime_breakdown(benchmark, report):
    table = benchmark(fig1_runtime_breakdown)
    report("Fig. 1 — MHA runtime breakdown (fractions)", {
        "measured": table,
        "paper": PAPER_FIG1,
    })
    for platform, breakdown in table.items():
        assert breakdown["step2_softmax_map"] == max(breakdown.values())
