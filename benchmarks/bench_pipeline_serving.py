"""Pipeline serving: a three-stage RAG chain through the event loop.

Not a paper artifact — the multi-stage counterpart of the serving
benchmarks: one retrieval→rerank→classify chain on per-stage vitality
pools, measured end to end (sustained throughput, per-stage utilization,
handoff accounting).  With ``--json DIR`` the test leaves a
``BENCH_pipeline_serving.json`` record (wall seconds of one driver run plus
the headline request and handoff throughput) for the performance
trajectory.
"""

from repro.serve import PoissonTraffic, WorkloadMix, serve_pipeline

PIPELINE = "rag = encoder[tokens=256] -> rerank:encoder[tokens=64] -> deit-tiny"
POOLS = {"encoder": "2xvitality", "rerank": "1xvitality",
         "deit-tiny": "1xvitality"}


def run_pipeline():
    traffic = PoissonTraffic(rate=120.0, mix=WorkloadMix.of(["deit-tiny"]))
    return serve_pipeline(traffic, PIPELINE, POOLS, duration=2.0, seed=0)


def test_pipeline_serving(benchmark, report, bench_json):
    result = benchmark(run_pipeline)
    block = result.pipeline
    report("Pipeline serving — 3-stage RAG chain on per-stage pools", {
        "completed": result.completed,
        "throughput_rps": result.throughput_rps,
        "mean_ms": result.latency.mean * 1e3,
        "p99_ms": result.latency.p99 * 1e3,
        "handoffs": block["handoffs"],
        "stage_utilization": {row["name"]: row["utilization"]
                              for row in block["stages"]},
    })
    bench_json("pipeline_serving", benchmark.stats.stats.mean,
               requests=result.completed,
               throughput_rps=result.throughput_rps,
               handoffs=block["handoffs"])
    assert result.completed == result.offered > 0
    # Every request of the linear chain pays exactly two handoffs.
    assert block["handoffs"] == 2 * result.completed
