"""Fig. 15: effect of the Sanger sparsity threshold on DeiT-Tiny accuracy."""

import pytest

from repro.experiments.accuracy_exps import fig15_threshold_sweep


@pytest.mark.slow
def test_fig15_threshold_sweep(benchmark, report):
    results = benchmark.pedantic(
        fig15_threshold_sweep,
        kwargs={"thresholds": (0.02, 0.5, 0.9), "quick": True},
        rounds=1, iterations=1)
    report("Fig. 15 — accuracy vs sparsity threshold (synthetic-dataset analogue, %)", {
        "measured": {str(k): v for k, v in results.items()},
        "paper": {"0.02": 71.2, "0.5": 71.9, "0.9": "drops (sparse part vanishes)"},
    })
    assert set(results) == {0.02, 0.5, 0.9}
    for per_scheme in results.values():
        assert per_scheme["vitality"] > 0.0
