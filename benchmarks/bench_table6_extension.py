"""Table VI: pre/post-processor requirements of linear-attention Transformer families."""

from repro.experiments.hardware_exps import table6_extension


def test_table6_extension(benchmark, report):
    table = benchmark(table6_extension)
    report("Table VI — accelerator extension to other linear attentions", table)
    assert table["vitality"]["processors"] == ["Acc.", "Div.", "Add."]
    assert "Exp." in table["performer"]["processors"]
