"""Fig. 14: occupancy of the sparse component shrinking over ViTALiTy training epochs."""

import pytest

from repro.experiments.accuracy_exps import fig14_sparsity_vanishing


@pytest.mark.slow
def test_fig14_sparsity_vanishing(benchmark, report):
    occupancy = benchmark.pedantic(fig14_sparsity_vanishing,
                                   kwargs={"quick": True, "epochs": 5},
                                   rounds=1, iterations=1)
    report("Fig. 14 — sparse-component occupancy per epoch (fraction)", {
        "measured_per_epoch": occupancy,
        "paper": "non-zeros in the sparse part drop below ~1% within ~10 epochs",
    })
    assert len(occupancy) == 5
    assert all(0.0 <= value <= 1.0 for value in occupancy)
    # The occupancy must not grow over training (it vanishes in the paper).
    assert occupancy[-1] <= occupancy[0] + 0.02
