"""Serving at scale: wall throughput and peak memory of streaming summaries.

Not a paper artifact — the scaling harness for the ROADMAP's million-request
serving item.  One ``serve(..., summary="streaming")`` run per decade of
offered load (10^4 and 10^5 requests always; 10^6 when ``REPRO_BENCH_FULL``
is set) on a fixed 4-replica fleet, recording simulated requests per wall
second and tracemalloc peak memory.  The peak must stay independent of the
request count — that is the point of the streaming report path: lazy
arrivals, an indexed router, and P² sketches instead of per-request records.
With ``--json DIR`` the run leaves a ``BENCH_serve_scale.json`` record for
the performance trajectory.
"""

import os
import time
import tracemalloc

from repro.serve import PoissonTraffic, WorkloadMix, serve

RATE = 2000.0                  # ~60% utilization on the 4-replica fleet
FLEET = "4xvitality"
SIZES = (10_000, 100_000)


def _run(n_requests: int, summary: str = "streaming"):
    traffic = PoissonTraffic(rate=RATE, mix=WorkloadMix.of(["deit-tiny"]))
    start = time.perf_counter()
    report = serve(traffic, FLEET, policy="size", router="least-loaded",
                   duration=n_requests / RATE, seed=0, summary=summary)
    return report, time.perf_counter() - start


def _peak_mib(n_requests: int) -> float:
    """Peak traced allocation of one streaming run, in MiB.

    Traced separately from the timed run: tracemalloc costs roughly a 2x
    slowdown, which would corrupt the throughput figure.
    """

    tracemalloc.start()
    _run(n_requests)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 2**20


def test_serve_scale(report, bench_json):
    sizes = SIZES + ((1_000_000,) if os.environ.get("REPRO_BENCH_FULL")
                     else ())
    _run(1_000)              # warm the engine cache and import machinery
    rows = {}
    for size in sizes:
        run_report, wall = _run(size)
        assert run_report.completed == run_report.offered
        rows[size] = {
            "offered": run_report.offered,
            "wall_seconds": round(wall, 3),
            "requests_per_second": round(run_report.offered / wall, 1),
            "peak_mib": round(_peak_mib(size), 3),
        }
    report("Serving at scale — streaming summaries on 4xvitality", rows)
    largest = rows[sizes[-1]]
    bench_json("serve_scale", largest["wall_seconds"],
               requests=largest["offered"],
               requests_per_second=largest["requests_per_second"],
               peak_mib=largest["peak_mib"],
               **{f"rps_{size}": row["requests_per_second"]
                  for size, row in rows.items()},
               **{f"peak_mib_{size}": row["peak_mib"]
                  for size, row in rows.items()})
    # The req/s floor is deliberately loose (CI runners are slow and
    # single-core); the trajectory JSON carries the real figure.
    assert largest["requests_per_second"] > 2000
    # Peak memory must not scale with the request count: a per-request
    # record leak would add tens of MiB per decade.
    assert rows[sizes[-1]]["peak_mib"] < 3.0 * rows[sizes[0]]["peak_mib"] + 4.0
