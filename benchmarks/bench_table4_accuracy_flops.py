"""Table IV: accuracy vs attention-FLOPs trade-off across methods (DeiT-Tiny).

The FLOPs column is analytic; the accuracy column fine-tunes the reduced
DeiT-Tiny on the synthetic dataset (quick settings), so absolute accuracies
differ from ImageNet but the FLOPs ordering and the "ViTALiTy is competitive
at lower FLOPs" conclusion are regenerated.
"""

import pytest

from repro.experiments.accuracy_exps import table4_accuracy
from repro.experiments.complexity import table4_flops


def test_table4_flops(benchmark, report):
    table = benchmark(table4_flops)
    report("Table IV — attention FLOPs (G)", {
        "measured": table,
        "paper": {"baseline": 0.50, "vitality": 0.33, "linformer": 0.35,
                  "performer": 0.40, "sanger": 0.33, "svite": 0.38, "uvc": 0.30},
    })
    assert table["vitality"]["flops_g"] < table["baseline"]["flops_g"]


@pytest.mark.slow
def test_table4_accuracy(benchmark, report):
    accuracies = benchmark.pedantic(table4_accuracy, kwargs={"quick": True},
                                    rounds=1, iterations=1)
    report("Table IV — accuracy column (synthetic-dataset analogue)", {
        "measured": accuracies,
        "paper": {"baseline": 72.2, "vitality": 71.9, "linformer": 69.5,
                  "performer": 68.3, "sanger": 71.2},
    })
    assert accuracies["vitality"] > 0.0
