"""Fig. 3: distribution of attention similarities before and after mean-centering."""

from repro.experiments.accuracy_exps import fig3_attention_distribution


def test_fig3_attention_distribution(benchmark, report):
    summary = benchmark.pedantic(fig3_attention_distribution,
                                 kwargs={"quick": False, "source": "calibrated"},
                                 rounds=1, iterations=1)
    report("Fig. 3 — fraction of similarities in [-1, 1)", {
        "measured": summary,
        "paper": {"vanilla": 0.46, "mean_centred": 0.67, "gain": 0.21},
    })
    assert summary["mean_gain"] > 0.1
