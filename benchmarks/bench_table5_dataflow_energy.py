"""Table V: Taylor-attention energy under G-stationary vs down-forward accumulation."""

from repro.experiments.hardware_exps import table5_dataflow_energy


def test_table5_dataflow_energy(benchmark, report):
    table = benchmark(table5_dataflow_energy)
    report("Table V — dataflow energy comparison (uJ)", {
        "measured": table,
        "paper_deit_base": {"g_stationary_overall": 222, "down_forward_overall": 198,
                            "g_stationary_data": 2.92, "down_forward_data": 3.76},
    })
    for model, per_dataflow in table.items():
        assert per_dataflow["down_forward"]["overall_uj"] < per_dataflow["g_stationary"]["overall_uj"]
