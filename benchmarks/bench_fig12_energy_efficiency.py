"""Fig. 12: energy-efficiency improvement of the ViTALiTy accelerator over all baselines."""

from repro.experiments.hardware_exps import (
    PAPER_ATTENTION_ENERGY,
    PAPER_FIG12_AVERAGE,
    fig12_energy_efficiency,
)


def test_fig12_energy_efficiency(benchmark, report):
    rows = benchmark(fig12_energy_efficiency)
    averages = {key: sum(row[key] for row in rows.values()) / len(rows)
                for key in ("cpu", "edge_gpu", "gpu", "sanger")}
    attention_averages = {key: sum(row[f"attention_{key}"] for row in rows.values()) / len(rows)
                          for key in ("cpu", "edge_gpu", "gpu", "sanger")}
    report("Fig. 12 — energy-efficiency improvement of ViTALiTy", {
        "per_model_end_to_end": rows,
        "average_end_to_end": averages,
        "average_attention_only": attention_averages,
        "paper_average_end_to_end": PAPER_FIG12_AVERAGE,
        "paper_average_attention": PAPER_ATTENTION_ENERGY,
    })
    for baseline, gain in averages.items():
        assert gain > 1.0, baseline
