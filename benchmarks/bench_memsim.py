"""Tile-level memory simulator throughput: tiles simulated per second.

Not a paper artifact — the performance guard for the memsim subsystem
(``repro.hardware.memsim``).  A bandwidth-constrained design point pays for
every tile's load/compute/drain overlap individually, so the cost of a
simulation scales with the tile count; this benchmark sweeps the sequence
length (197 -> 1024 tokens) at 25 GB/s, checks every run still produces
memory-bound layers with nonzero stalls, and records the aggregate
tiles-per-second rate the tile pipeline sustains.
"""

from __future__ import annotations

import time

from repro.engine import ResultCache, RunSpec, simulate

TARGET = "vitality[dram_gbps=25]"
TOKEN_SWEEP = (197, 512, 1024)


def memsim_layer_sweep() -> dict[str, object]:
    start = time.perf_counter()
    tiles = 0
    memory_bound_layers = 0
    stall_cycles = 0
    cache = ResultCache()
    for tokens in TOKEN_SWEEP:
        result = simulate(RunSpec(f"deit-tiny[tokens={tokens}]", target=TARGET),
                          cache=cache)
        assert result.roofline, "memsim design point must emit rooflines"
        tiles += sum(record.tiles * record.repeats for record in result.roofline)
        memory_bound_layers += sum(record.repeats for record in result.roofline
                                   if record.bound == "memory")
        stall_cycles += sum(record.stall_cycles * record.repeats
                            for record in result.roofline)
    seconds = time.perf_counter() - start
    return {
        "tokens": list(TOKEN_SWEEP),
        "tiles": tiles,
        "memory_bound_layers": memory_bound_layers,
        "stall_cycles": stall_cycles,
        "seconds": seconds,
        "tiles_per_second": tiles / seconds,
    }


def test_memsim_tiles_per_second(benchmark, report, bench_json):
    rows = benchmark.pedantic(memsim_layer_sweep, rounds=1, iterations=1)
    report("Memsim — tile throughput over a DeiT-Tiny sequence-length sweep",
           rows)
    bench_json("memsim", rows["seconds"],
               tiles=rows["tiles"],
               tiles_per_second=rows["tiles_per_second"],
               memory_bound_layers=rows["memory_bound_layers"])
    assert rows["tiles"] > 0
    assert rows["memory_bound_layers"] > 0
    assert rows["stall_cycles"] > 0
