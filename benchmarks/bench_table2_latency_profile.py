"""Table II: per-step latency of Taylor vs vanilla attention on the edge-GPU model."""

from repro.experiments.profiling_exps import PAPER_TABLE2_TOTALS, table2_latency_profile


def test_table2_latency_profile(benchmark, report):
    rows = benchmark(table2_latency_profile)
    report("Table II — per-step latency on the edge GPU (ms)", {
        "measured": rows,
        "paper_totals_ms": PAPER_TABLE2_TOTALS,
    })
    deit = next(row for row in rows if row["model"] == "deit-tiny")
    assert deit["taylor_total_ms"] > deit["vanilla_total_ms"] * 0.9
