"""Design-choice ablations: intra-layer pipeline on/off and systolic-array utilisation sweep."""

from repro.experiments.hardware_exps import pipeline_ablation
from repro.hardware import ViTALiTyAccelerator, ViTALiTyAcceleratorConfig
from repro.workloads import DEIT_TINY


def test_pipeline_ablation(benchmark, report):
    result = benchmark(pipeline_ablation)
    report("Ablation — intra-layer pipeline", result)
    assert result["throughput_gain"] > 1.0


def test_utilization_sweep(benchmark, report):
    def sweep():
        rows = {}
        for utilization in (0.5, 0.7, 0.85, 1.0):
            config = ViTALiTyAcceleratorConfig(systolic_utilization=utilization)
            result = ViTALiTyAccelerator(config).run_model(DEIT_TINY, include_linear=False)
            rows[utilization] = result.attention_latency * 1e3
        return rows

    rows = benchmark(sweep)
    report("Ablation — systolic-array utilisation vs attention latency (ms)",
           {str(k): v for k, v in rows.items()})
    assert rows[1.0] <= rows[0.5]
