"""Table III: accelerator configurations (area/power parity between ViTALiTy and Sanger)."""

from repro.experiments.hardware_exps import table3_configurations


def test_table3_configurations(benchmark, report):
    table = benchmark(table3_configurations)
    report("Table III — accelerator configurations", {
        "measured": table,
        "paper": {"vitality": {"area_mm2": 5.223, "power_mw": 1460},
                  "sanger": {"area_mm2": 5.194, "power_mw": 1450}},
    })
    assert abs(table["vitality"]["total_area_mm2"] - table["sanger"]["total_area_mm2"]) < 0.3
